//! Log-domain influence evaluation: `Σ ln(1 − PF(d))` against
//! `ln(1 − τ)`, with a branch-free table evaluation of the log-PF.
//!
//! The scalar and blocked kernels work in product space: a running
//! `∏ (1 − PF(dist))` compared against `1 − τ`. This module rewrites the
//! same test as a *sum*,
//!
//! ```text
//! Pr_c(O) ≥ τ  ⇔  ∏ (1 − PF(dᵢ)) ≤ 1 − τ  ⇔  Σ ln(1 − PF(dᵢ)) ≤ ln(1 − τ)
//! ```
//!
//! and evaluates the per-position term `g(s) = ln(1 − PF(√s))` over the
//! *squared* distance `s = dx² + dy²` through a precomputed coefficient
//! table ([`LogPfTable`]): exponent-indexed segments (a few mantissa
//! bits of `s` select a quadratic `c₀ + t·(c₁ + t·c₂)`, `t = s − mid`),
//! so the inner loop is subtract/multiply/add only — no `sqrt`, no
//! `powi`, no `ln`, no branch per position. Sums have no ordering
//! constraint (unlike the product-space kernels, which must reproduce
//! the scalar multiply sequence bit for bit), so the refinement loop
//! runs 4-wide with independent accumulators.
//!
//! ## Exactness through the guard band
//!
//! The table is *approximate*; verdicts still always equal the scalar
//! kernel's. At build time the table measures its own worst-case
//! per-position error and stores `eps = `[`LogPfTable::eps`]; every
//! decision must then clear the threshold `L = ln(1 − τ)` by the pair's
//! guard band
//!
//! ```text
//! band(n) = n · (eps + SLOP_PER_POSITION) + slop_abs(τ)
//! ```
//!
//! which dominates the accumulated table error, the float summation
//! error, and the product-vs-log-sum discrepancy of the scalar
//! comparison (`slop_abs` includes `ulp(1)/(1 − τ)`, the log-space
//! image of the scalar `1 − product ≥ τ` subtraction rounding). A sum
//! at or below `L − band` certifies influence; at or above `L + band`
//! certifies non-influence; anything *inside* the band falls back to
//! the exact product-space scan (`fell_back_to_exact`), which is
//! bit-identical to the scalar evaluator. The same band guards the
//! block-level `minDist`/`maxDist` bounds, so bounding and refinement
//! share one accumulator and one threshold pair — the debug-mode
//! contract check and the cross-kernel property tests in
//! `pinocchio-core` enforce verdict equality end to end.
//!
//! This module is also the single home of the shared log-domain
//! helpers ([`ln_one_minus`], [`log_non_influence`]) that `radius` and
//! `alt` reuse, so the `ln(1 − x)` math lives in exactly one place.

use crate::block::SoaBlocks;
use crate::cumulative::{CumulativeProbability, EarlyStopOutcome};
use crate::pf::ProbabilityFunction;
use pinocchio_geo::{Euclidean, Point};

/// `ln(1 − x)` evaluated as `ln_1p(−x)` — the log-domain threshold and
/// per-position factor, accurate for `x` near 0 where the naive
/// `(1.0 − x).ln()` loses digits. Every `ln(1 − ·)` in this crate goes
/// through here.
#[inline]
pub fn ln_one_minus(x: f64) -> f64 {
    (-x).ln_1p()
}

/// The log-domain non-influence contribution of one position at
/// distance `d`: `ln(1 − PF(d))`. This is the exact quantity the
/// [`LogPfTable`] approximates (over squared distance).
#[inline]
pub fn log_non_influence<P: ProbabilityFunction + ?Sized>(pf: &P, d: f64) -> f64 {
    ln_one_minus(pf.prob(d))
}

/// Mantissa bits kept in the segment index: 2⁵ = 32 segments per octave
/// of squared distance. Quadratic-fit error scales cubically with the
/// relative segment width, so each extra bit buys ~8× accuracy; five
/// bits put the measured power-law bound near 2e-6 (pinned in tests)
/// while only the handful of segments around a workload's actual
/// distance range ever gets hot.
const SEG_MANTISSA_BITS: u32 = 5;
/// Right shift turning an `f64` bit pattern into a segment key.
const SEG_SHIFT: u32 = 52 - SEG_MANTISSA_BITS;
/// Smallest tabulated squared distance, `2^MIN_EXP`.
const MIN_EXP: i32 = -64;
/// Upper end of the tabulated squared-distance range, `2^MAX_EXP`.
const MAX_EXP: i32 = 64;
/// Segment key of `2^MIN_EXP` (IEEE 754 biased exponent shifted left by
/// the mantissa bits kept).
const SEG_BIAS: usize = ((1023 + MIN_EXP) as usize) << SEG_MANTISSA_BITS;
/// Total number of table segments.
const SEG_COUNT: usize = ((MAX_EXP - MIN_EXP) as usize) << SEG_MANTISSA_BITS;

/// Mantissa bits of the *bound* tables: 2³ = 8 segments per octave.
/// Unlike the quadratic fit, the bound tables are exact (monotonicity,
/// not approximation), so coarseness costs only tightness. The bound
/// tables exist for [`LogPfTable::tile_cutoffs`]: their segment
/// boundaries are exactly representable bit patterns, which is what
/// makes inverting a log-space threshold into a squared-distance
/// cutoff a `partition_point` over the table (the hot per-block bounds
/// use the quadratic fit `±eps` directly, which is tighter).
const BOUND_MANTISSA_BITS: u32 = 3;
/// Right shift turning an `f64` bit pattern into a bound-segment key.
const BOUND_SHIFT: u32 = 52 - BOUND_MANTISSA_BITS;
/// Bound-segment key of `2^MIN_EXP`.
const BOUND_BIAS: usize = ((1023 + MIN_EXP) as usize) << BOUND_MANTISSA_BITS;
/// Total number of bound-table segments.
const BOUND_COUNT: usize = ((MAX_EXP - MIN_EXP) as usize) << BOUND_MANTISSA_BITS;

/// Safety factor applied to the sampled fit error: the per-segment
/// error is measured on a finite sample, so the stored bound scales it
/// up to dominate the points between samples.
const FIT_SAFETY: f64 = 4.0;
/// Per-position slop covering float summation rounding on top of the
/// table error (generous: terms are `O(1)` and accumulate at
/// `O(n·ulp)`, far below this for any realistic trajectory length).
const SLOP_PER_POSITION: f64 = 1e-10;
/// Absolute floor of the per-pair guard band.
const SLOP_ABS: f64 = 1e-11;
/// Tables whose measured error bound exceeds this are unusable — the
/// band would force the exact fallback on essentially every pair, so
/// [`LogPfTable::try_new`] refuses to build them (callers fall back to
/// the product-space kernels). This triggers for probability functions
/// with `PF(0) = 1`, where `g(0) = −∞`.
const MAX_USABLE_EPS: f64 = 1e-3;

/// Per-pair guard band in log space (see the module docs): table error
/// plus summation slop per position, plus the log-space image of the
/// scalar comparison's product-space rounding.
#[inline]
fn guard_band(n: usize, eps: f64, tau: f64) -> f64 {
    n as f64 * (eps + SLOP_PER_POSITION) + SLOP_ABS + f64::EPSILON / (1.0 - tau)
}

/// Precomputed coefficient table for `g(s) = ln(1 − PF(√s))` over
/// squared distance `s`.
///
/// Segments are exponent-indexed: the top [`SEG_MANTISSA_BITS`]
/// mantissa bits of `s` (clamped into `[2^−64, 2^64]`) select a
/// quadratic fitted through the segment's endpoints and midpoint,
/// evaluated about the segment midpoint for conditioning. Lookup and
/// evaluation are branch-free (`clamp` + shift + one `min`), which is
/// what lets the refinement loop run unrolled with no per-position
/// control flow.
///
/// The table is built per probability function (it does not depend on
/// `τ`) and measures its own error: [`Self::eps`] bounds
/// `|eval(s) − g(s)|` for every `s ≥ 0`, including the clamped ends
/// (below `2^−64` the gap to `g(0)` is folded in; above `2^64` the
/// residual `|g|` of the tail is). Verdict soundness never depends on
/// the fit being good — only the guard band does.
#[derive(Debug, Clone)]
pub struct LogPfTable {
    /// Per-segment `[mid, c0, c1, c2]`: value `c0 + t·(c1 + t·c2)` at
    /// `t = s − mid`.
    coeffs: Vec<[f64; 4]>,
    /// Exact per-segment lower bounds on `g` (coarse segmentation, see
    /// [`BOUND_MANTISSA_BITS`]): `bound_lo[i] ≤ g(s)` for every `s ≥ 0`
    /// mapping to segment `i` after the clamp. Relies on `g` being
    /// monotone non-decreasing in squared distance — the same Theorem
    /// 1–2 monotonicity every MBR bound in the kernels already assumes.
    /// Consumed by the [`Self::tile_cutoffs`] inversion (and the
    /// [`Self::bound_below`] accessor it is tested through).
    bound_lo: Vec<f64>,
    /// Exact per-segment upper bounds on `g` (same contract, above).
    bound_hi: Vec<f64>,
    s_min: f64,
    s_max: f64,
    eps: f64,
}

impl LogPfTable {
    /// Builds the table for `pf`, or `None` when the measured error
    /// bound is unusable (non-finite or above [`MAX_USABLE_EPS`] — e.g.
    /// `PF(0) = 1`, whose log diverges at distance zero). Callers treat
    /// `None` as "use the product-space kernels instead".
    pub fn try_new<P: ProbabilityFunction + ?Sized>(pf: &P) -> Option<LogPfTable> {
        let s_min = (2.0f64).powi(MIN_EXP);
        let s_max = (2.0f64).powi(MAX_EXP);
        let g = |s: f64| ln_one_minus(pf.prob(s.sqrt()));

        let mut coeffs = Vec::with_capacity(SEG_COUNT);
        let mut fit_err = 0.0f64;
        for seg in 0..SEG_COUNT {
            let lo = f64::from_bits(((seg + SEG_BIAS) as u64) << SEG_SHIFT);
            let hi = f64::from_bits(((seg + 1 + SEG_BIAS) as u64) << SEG_SHIFT);
            let mid = 0.5 * (lo + hi);
            let h = 0.5 * (hi - lo);
            let (ga, gm, gb) = (g(lo), g(mid), g(hi));
            // Quadratic through (lo, mid, hi) in t = s − mid: the
            // symmetric nodes t = ±h give closed-form coefficients.
            let c1 = (gb - ga) / (2.0 * h);
            let c2 = (ga + gb - 2.0 * gm) / (2.0 * h * h);
            coeffs.push([mid, gm, c1, c2]);
            // Sampled fit error over the segment (endpoints included).
            for k in 0..=16 {
                let s = lo + (hi - lo) * (k as f64 / 16.0);
                let t = s - mid;
                let err = (gm + t * (c1 + t * c2) - g(s)).abs();
                if err > fit_err {
                    fit_err = err;
                }
            }
        }
        // Clamped ends: below s_min the table returns ~g(s_min) while
        // the true value sits in [g(0), g(s_min)]; above s_max it
        // returns ~g(s_max) while the true value sits in (g(s_max), 0).
        let low_gap = g(s_min) - g(0.0);
        let tail_gap = -g(s_max);
        let eps = FIT_SAFETY * fit_err + low_gap + tail_gap + 1e-15;
        if !eps.is_finite() || eps > MAX_USABLE_EPS {
            return None;
        }

        // Exact bound tables: `g` is monotone non-decreasing in squared
        // distance (PF decreases with distance — the monotonicity every
        // MBR-based bound already rests on), so over a segment
        // `[lo, hi)` the infimum is `g(lo)` and the supremum is at most
        // `g(hi)`. Two patches make the clamp sound end to end: any
        // `s < s_min` also lands in segment 0, whose lower bound must
        // therefore fall to `g(0)`; any `s > s_max` lands in the last
        // segment, whose upper bound must rise to the global supremum 0.
        let mut bound_lo = Vec::with_capacity(BOUND_COUNT);
        let mut bound_hi = Vec::with_capacity(BOUND_COUNT);
        for seg in 0..BOUND_COUNT {
            let lo = f64::from_bits(((seg + BOUND_BIAS) as u64) << BOUND_SHIFT);
            let hi = f64::from_bits(((seg + 1 + BOUND_BIAS) as u64) << BOUND_SHIFT);
            bound_lo.push(g(lo));
            bound_hi.push(g(hi).min(0.0));
        }
        bound_lo[0] = g(0.0);
        bound_hi[BOUND_COUNT - 1] = 0.0; // pinocchio-lint: allow(panic-path) -- BOUND_COUNT is a positive const and both vecs were just filled to exactly that length

        Some(LogPfTable {
            coeffs,
            bound_lo,
            bound_hi,
            s_min,
            s_max,
            eps,
        })
    }

    /// Upper bound on `|eval(s) − ln(1 − PF(√s))|` over all `s ≥ 0`,
    /// measured at build time. This is the per-position term of the
    /// guard band.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// `≈ ln(1 − PF(√s))` for squared distance `s ≥ 0`, within
    /// [`Self::eps`]. Branch-free: clamp, exponent-indexed segment
    /// lookup, one quadratic.
    // pinocchio-hot: per-position table lookup of the log-domain kernel
    #[inline]
    pub fn eval(&self, s: f64) -> f64 {
        let s = s.clamp(self.s_min, self.s_max);
        #[allow(clippy::cast_possible_truncation)]
        let key = (s.to_bits() >> SEG_SHIFT) as usize; // pinocchio-lint: allow(cast-truncation) -- 15-bit segment key after the shift, far below usize::MAX on any supported target
        let idx = (key - SEG_BIAS).min(self.coeffs.len() - 1);
        let c = &self.coeffs[idx];
        let t = s - c[0];
        c[1] + t * (c[2] + t * c[3])
    }

    /// Exact upper bound on `g(s) = ln(1 − PF(√s))` for any `s ≥ 0`:
    /// one 8-byte load, no quadratic. Bound decisions made with this
    /// need no guard band — the bound is sound against the true `g`,
    /// not the fitted one. The kernels' per-block bounds use the
    /// tighter `eval ± eps` instead; this accessor is the scalar form
    /// of the monotone contract behind [`Self::tile_cutoffs`].
    #[inline]
    pub fn bound_above(&self, s: f64) -> f64 {
        let s = s.clamp(self.s_min, self.s_max);
        #[allow(clippy::cast_possible_truncation)]
        let key = (s.to_bits() >> BOUND_SHIFT) as usize; // pinocchio-lint: allow(cast-truncation) -- 13-bit segment key after the shift, far below usize::MAX on any supported target
        let idx = (key - BOUND_BIAS).min(self.bound_hi.len() - 1);
        self.bound_hi[idx]
    }

    /// Exact lower bound on `g(s)` for any `s ≥ 0` (see
    /// [`Self::bound_above`]).
    #[inline]
    pub fn bound_below(&self, s: f64) -> f64 {
        let s = s.clamp(self.s_min, self.s_max);
        #[allow(clippy::cast_possible_truncation)]
        let key = (s.to_bits() >> BOUND_SHIFT) as usize; // pinocchio-lint: allow(cast-truncation) -- 13-bit segment key after the shift, far below usize::MAX on any supported target
        let idx = (key - BOUND_BIAS).min(self.bound_lo.len() - 1);
        self.bound_lo[idx]
    }

    /// Inverts the bound tables for one `(n, τ)` pair into two
    /// squared-distance cutoffs, so the per-candidate object-level
    /// pre-check becomes two float compares with no table loads:
    ///
    /// * `maxDist² < influenced_below` ⇔ `n · bound_above(maxDist²) ≤
    ///   L − band` — certainly influenced;
    /// * `minDist² ≥ not_influenced_at` ⇔ `n · bound_below(minDist²) ≥
    ///   L + band` — certainly not influenced.
    ///
    /// Both equivalences are exact (the bound arrays are monotone
    /// non-decreasing, so each predicate holds on a prefix/suffix of
    /// segments whose boundary is a representable squared distance), so
    /// decisions through the cutoffs are identical to decisions through
    /// the bound tables. Costs two binary searches — callers memoise per
    /// object.
    pub fn tile_cutoffs(&self, n: usize, tau: f64) -> TileCutoffs {
        let l = ln_one_minus(tau);
        let band = guard_band(n, self.eps, tau);
        let nf = n as f64;
        // First segment whose upper bound no longer certifies influence;
        // its lower boundary is the exclusive cutoff.
        let first_fail = self.bound_hi.partition_point(|&g| nf * g <= l - band);
        let influenced_below = match first_fail {
            0 => 0.0,
            i if i == self.bound_hi.len() => f64::INFINITY,
            i => f64::from_bits(((i + BOUND_BIAS) as u64) << BOUND_SHIFT),
        };
        // First segment whose lower bound certifies non-influence; its
        // lower boundary is the inclusive cutoff.
        let first_pass = self.bound_lo.partition_point(|&g| nf * g < l + band);
        let not_influenced_at = match first_pass {
            0 => 0.0,
            i if i == self.bound_lo.len() => f64::INFINITY,
            i => f64::from_bits(((i + BOUND_BIAS) as u64) << BOUND_SHIFT),
        };
        TileCutoffs {
            influenced_below,
            not_influenced_at,
            thr_inf: l - band,
            thr_not: l + band,
        }
    }
}

/// Per-object squared-distance cutoffs precomputed by
/// [`LogPfTable::tile_cutoffs`] — the register-resident form of the
/// object-level pre-check used by the tile kernel, plus the pair's
/// banded log thresholds so undecided candidates enter the bounding
/// passes without recomputing `ln(1 − τ)` or the guard band per pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileCutoffs {
    /// `maxDist²` strictly below this certifies influence.
    pub influenced_below: f64,
    /// `minDist²` at or above this certifies non-influence.
    pub not_influenced_at: f64,
    /// `ln(1 − τ) − band`: table sums at or below this certify
    /// influence.
    pub thr_inf: f64,
    /// `ln(1 − τ) + band`: table lower bounds at or above this certify
    /// non-influence.
    pub thr_not: f64,
}

/// Reusable scratch for
/// [`CumulativeProbability::influences_log_blocked`]: per-block
/// upper-bound sums saved by the bounding pass (consumed as a running
/// remainder in refinement) and lower-bound suffix sums for straddling
/// pairs (the log-space analogue of [`crate::BlockScratch`]).
#[derive(Debug, Clone, Default)]
pub struct LogScratch {
    hi: Vec<f64>,
    lo: Vec<f64>,
}

/// Outcome of a log-domain blocked influence evaluation.
///
/// Position accounting is total: `positions_evaluated +
/// positions_skipped` always equals the number of positions in the
/// view, including on the exact-fallback path (which scans everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogBlockedOutcome {
    /// Whether the candidate influences the object (`Pr_c(O) ≥ τ`) —
    /// always identical to the scalar verdict.
    pub influenced: bool,
    /// Positions whose log contribution was evaluated (table refinement
    /// or exact fallback).
    pub positions_evaluated: usize,
    /// Positions decided purely through their block's bounds.
    pub positions_skipped: usize,
    /// Blocks never refined (bounded only).
    pub blocks_pruned: usize,
    /// Whether the pair landed inside the guard band and was resolved
    /// by the exact product-space scan instead of the table sum.
    pub fell_back_to_exact: bool,
}

/// Aggregated outcome of
/// [`CumulativeProbability::influences_log_blocked_tile`]: per-pair
/// verdicts as a bitmask, counters summed over the tile. Accounting
/// stays total — `positions_evaluated + positions_skipped` equals the
/// tile width times the view's position count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogTileOutcome {
    /// Bit `j` set ⇔ `candidates[j]` influences the object.
    pub influenced_mask: u32,
    /// Tile total of positions refined exactly.
    pub positions_evaluated: usize,
    /// Tile total of positions decided through bounds.
    pub positions_skipped: usize,
    /// Tile total of blocks never refined.
    pub blocks_pruned: usize,
    /// How many of the tile's pairs fell back to the exact scan.
    pub band_fallbacks: u32,
}

impl<P: ProbabilityFunction> CumulativeProbability<P, Euclidean> {
    /// Table-sum of one block's positions: 4-wide unrolled over the
    /// coordinate rows, independent accumulators (sums are
    /// order-insensitive under the guard band, unlike the product-space
    /// refinement which must preserve the scalar multiply order).
    // pinocchio-hot: inner distance/table lane of every log-domain refinement
    #[inline]
    fn refine_block_log(
        &self,
        table: &LogPfTable,
        c: &Point,
        blocks: &SoaBlocks<'_>,
        b: usize,
    ) -> f64 {
        const LANES: usize = 8;
        let range = blocks.block_range(b);
        let xs = &blocks.xs()[range.clone()];
        let ys = &blocks.ys()[range];
        let mut acc = [0.0f64; LANES];
        let mut cx = xs.chunks_exact(LANES);
        let mut cy = ys.chunks_exact(LANES);
        for (rx, ry) in (&mut cx).zip(&mut cy) {
            for lane in 0..LANES {
                let dx = rx[lane] - c.x;
                let dy = ry[lane] - c.y;
                acc[lane] += table.eval(dx * dx + dy * dy);
            }
        }
        let mut tail = 0.0f64;
        for (&x, &y) in cx.remainder().iter().zip(cy.remainder()) {
            let dx = x - c.x;
            let dy = y - c.y;
            tail += table.eval(dx * dx + dy * dy);
        }
        let a = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        let b = (acc[4] + acc[5]) + (acc[6] + acc[7]);
        (a + b) + tail
    }

    /// Exact product-space scan over every block, reproducing the
    /// scalar evaluator's multiply sequence bit for bit; resolves pairs
    /// the guard band could not decide.
    fn exact_fallback(&self, c: &Point, blocks: &SoaBlocks<'_>, tau: f64) -> bool {
        let mut product = 1.0f64;
        for b in 0..blocks.block_count() {
            self.refine_block(c, blocks, b, &mut product);
        }
        1.0 - product >= tau
    }

    /// Influence test over a blocked structure-of-arrays view, in log
    /// space.
    ///
    /// The verdict is always identical to [`Self::influences`] on the
    /// same positions: table decisions must clear the threshold by the
    /// pair's guard band, and in-band pairs are resolved by the exact
    /// scalar scan. See the module docs for the band derivation and
    /// DESIGN.md §15 for the full soundness argument.
    // pinocchio-hot: per-(candidate, object) kernel of the log-blocked solver path
    pub fn influences_log_blocked(
        &self,
        candidate: &Point,
        blocks: &SoaBlocks<'_>,
        tau: f64,
        table: &LogPfTable,
        scratch: &mut LogScratch,
    ) -> LogBlockedOutcome {
        let n = blocks.len();
        let nblocks = blocks.block_count();
        // Influenced ⇔ Σ g ≤ L. Decisions clear L by the band; the
        // band grows with n, so long trajectories near the threshold
        // degrade gracefully into the exact fallback, never into a
        // wrong verdict.
        let l = ln_one_minus(tau);
        let band = guard_band(n, table.eps, tau);
        let thr_inf = l - band;
        let thr_not = l + band;

        // ---- O(1) object-level pre-check -----------------------------
        // (The tile kernel runs the equivalent cutoff form of this check
        // itself and enters `log_blocked_bounded` directly.)
        // Theorems 1–2 applied to the whole trajectory: every position
        // sits inside MBR(O), so `n·g̃(maxDist²(c, MBR))` bounds the log
        // sum from above and `n·g̃(minDist²(c, MBR))` from below. Two
        // table evaluations decide the clearly-near and clearly-far
        // pairs — the bulk of every workload — before any block walk.
        if let Some(om) = blocks.object_mbr() {
            let (s_min, s_max) = om.min_max_dist_sq(candidate);
            let decided = {
                let hi = (n as f64) * (table.eval(s_max) + table.eps);
                if hi <= thr_inf {
                    Some(true)
                } else {
                    let lo = (n as f64) * (table.eval(s_min) - table.eps);
                    (lo >= thr_not).then_some(false)
                }
            };
            if let Some(influenced) = decided {
                return self.log_checked(
                    candidate,
                    blocks,
                    tau,
                    LogBlockedOutcome {
                        influenced,
                        positions_evaluated: 0,
                        positions_skipped: n,
                        blocks_pruned: nblocks,
                        fell_back_to_exact: false,
                    },
                );
            }
        }

        self.log_blocked_bounded(candidate, blocks, tau, table, thr_inf, thr_not, scratch)
    }

    /// The bounding-and-refinement body of
    /// [`Self::influences_log_blocked`], entered once the O(1)
    /// object-level pre-check has failed to decide. `thr_inf` /
    /// `thr_not` must be the pair's banded thresholds
    /// (`ln(1 − τ) ∓ band`) for this view's position count — the public
    /// wrapper computes them per call, the tile kernel reuses the
    /// memoised copies in [`TileCutoffs`].
    // pinocchio-hot: the bounding/refinement body behind both log-blocked entry points
    #[allow(clippy::too_many_arguments)]
    fn log_blocked_bounded(
        &self,
        candidate: &Point,
        blocks: &SoaBlocks<'_>,
        tau: f64,
        table: &LogPfTable,
        thr_inf: f64,
        thr_not: f64,
        scratch: &mut LogScratch,
    ) -> LogBlockedOutcome {
        let n = blocks.len();
        let nblocks = blocks.block_count();

        // ---- single-block fast path ----------------------------------
        // With one block the block MBR *is* the object MBR, so the per-
        // block bounds repeat (wrapper entry) or barely sharpen (tile
        // entry — measured: <2% of tile straddlers decidable this way)
        // the pre-check that already failed to decide. Skip the bounding
        // passes and their scratch traffic entirely: refine the block,
        // settle against the banded thresholds, exact fallback in
        // between. Short single-block trajectories dominate straddlers
        // on the check-in workloads, so this path is hot.
        if nblocks == 1 {
            let sum = self.refine_block_log(table, candidate, blocks, 0);
            let outcome = if sum <= thr_inf || sum >= thr_not {
                LogBlockedOutcome {
                    influenced: sum <= thr_inf,
                    positions_evaluated: n,
                    positions_skipped: 0,
                    blocks_pruned: 0,
                    fell_back_to_exact: false,
                }
            } else {
                LogBlockedOutcome {
                    influenced: self.exact_fallback(candidate, blocks, tau),
                    positions_evaluated: n,
                    positions_skipped: 0,
                    blocks_pruned: 0,
                    fell_back_to_exact: true,
                }
            };
            return self.log_checked(candidate, blocks, tau, outcome);
        }

        // ---- bounding pass, upper side -------------------------------
        // Per block, `len · g̃(maxDist²)` bounds the block's true log
        // sum from above (PF monotone ⇒ g(dist²) ≤ g(maxDist²) for
        // every member). True contributions are ≤ 0, so a partial sum
        // clearing `thr_inf` already certifies influence regardless of
        // the unseen blocks — the block-level Lemma 4 exit, same shape
        // as the product-space kernel's. Upper side runs first: the
        // influenced-side exits (here and in refinement) carry a large
        // share of multi-block straddlers at validation thresholds, so
        // the hi bounds must be in hand before any lower-side work. The
        // same fused-MBR walk tracks the object-wide nearest squared
        // distance and stashes the per-block values in `scratch.lo`, so
        // the lower pass — when a straddler does need it — is a pure
        // table-lookup sweep with no second MBR walk.
        scratch.hi.clear();
        scratch.lo.clear();
        let mut hi_all = 0.0f64;
        let mut s_near = f64::INFINITY;
        let mut near_b = 0usize;
        for (b, mbr) in blocks.mbrs().iter().enumerate() {
            let len = blocks.block_range(b).len() as f64;
            let (s_min, s_max) = mbr.min_max_dist_sq(candidate);
            let s_hi = len * (table.eval(s_max) + table.eps);
            if s_min < s_near {
                s_near = s_min;
                near_b = b;
            }
            scratch.hi.push(s_hi);
            scratch.lo.push(s_min);
            hi_all += s_hi;
            if hi_all <= thr_inf {
                return self.log_checked(
                    candidate,
                    blocks,
                    tau,
                    LogBlockedOutcome {
                        influenced: true,
                        positions_evaluated: 0,
                        positions_skipped: n,
                        blocks_pruned: nblocks,
                        fell_back_to_exact: false,
                    },
                );
            }
        }

        // ---- lower side, object level --------------------------------
        // `g` is monotone increasing in squared distance and every
        // position sits at `dᵢ² ≥ s_near`, so `Σ g ≥ n·g(s_near)`: one
        // table eval decides the far (never-influenced) pairs without
        // a second pass over the block MBRs.
        if n > 0 && (n as f64) * (table.eval(s_near) - table.eps) >= thr_not {
            return self.log_checked(
                candidate,
                blocks,
                tau,
                LogBlockedOutcome {
                    influenced: false,
                    positions_evaluated: 0,
                    positions_skipped: n,
                    blocks_pruned: nblocks,
                    fell_back_to_exact: false,
                },
            );
        }

        // ---- bounding pass, lower side -------------------------------
        // Per-block nearest-distance bounds, rewriting the stashed raw
        // `minDist²` values in place — table lookups only, the block
        // MBRs are never walked twice. The tight per-block bounds also
        // repay themselves in refinement: the per-block remainder fires
        // the not-influenced exit after a block or two where the coarse
        // `remaining·g(s_near)` bound would force the whole trajectory
        // through the table.
        let mut lo_all = 0.0f64;
        for (b, s) in scratch.lo.iter_mut().enumerate() {
            let len = blocks.block_range(b).len() as f64;
            let s_lo = len * (table.eval(*s) - table.eps);
            *s = s_lo;
            lo_all += s_lo;
        }
        if lo_all >= thr_not {
            return self.log_checked(
                candidate,
                blocks,
                tau,
                LogBlockedOutcome {
                    influenced: false,
                    positions_evaluated: 0,
                    positions_skipped: n,
                    blocks_pruned: nblocks,
                    fell_back_to_exact: false,
                },
            );
        }

        // ---- refinement pass -----------------------------------------
        // The bounds straddle the band: replace block bounds with table
        // sums until exact-so-far plus still-bounded-remainder decides.
        // Both remainders are maintained by subtracting each refined
        // block's saved bound from its pass total (the subtraction
        // chains' rounding error is orders of magnitude below the band's
        // per-position slop). Refinement starts at the *nearest* block —
        // it carries the loosest lower bound, so replacing it first
        // fires the not-influenced exit (the common verdict once the
        // upper side failed) after one block where storage order could
        // walk the whole trajectory — then proceeds in storage order
        // over the rest.
        let mut hi_rem = hi_all;
        let mut lo_rem = lo_all;
        let mut sum = 0.0f64;
        let mut evaluated = 0usize;
        for t in 0..nblocks {
            let b = if t == 0 {
                near_b
            } else if t - 1 < near_b {
                t - 1
            } else {
                t
            };
            if sum + hi_rem <= thr_inf {
                return self.log_checked(
                    candidate,
                    blocks,
                    tau,
                    LogBlockedOutcome {
                        influenced: true,
                        positions_evaluated: evaluated,
                        positions_skipped: n - evaluated,
                        blocks_pruned: nblocks - t,
                        fell_back_to_exact: false,
                    },
                );
            }
            if sum + lo_rem >= thr_not {
                return self.log_checked(
                    candidate,
                    blocks,
                    tau,
                    LogBlockedOutcome {
                        influenced: false,
                        positions_evaluated: evaluated,
                        positions_skipped: n - evaluated,
                        blocks_pruned: nblocks - t,
                        fell_back_to_exact: false,
                    },
                );
            }
            sum += self.refine_block_log(table, candidate, blocks, b);
            hi_rem -= scratch.hi[b];
            lo_rem -= scratch.lo[b];
            evaluated += blocks.block_range(b).len();
            // Mid-refinement influenced exit: remaining true
            // contributions are ≤ 0, so the running table sum clearing
            // the band already decides.
            if sum <= thr_inf {
                return self.log_checked(
                    candidate,
                    blocks,
                    tau,
                    LogBlockedOutcome {
                        influenced: true,
                        positions_evaluated: evaluated,
                        positions_skipped: n - evaluated,
                        blocks_pruned: nblocks - t - 1,
                        fell_back_to_exact: false,
                    },
                );
            }
        }

        // Every block refined: decide outside the band, or resolve the
        // in-band remainder exactly.
        if sum >= thr_not {
            return self.log_checked(
                candidate,
                blocks,
                tau,
                LogBlockedOutcome {
                    influenced: false,
                    positions_evaluated: evaluated,
                    positions_skipped: n - evaluated,
                    blocks_pruned: 0,
                    fell_back_to_exact: false,
                },
            );
        }
        self.log_checked(
            candidate,
            blocks,
            tau,
            LogBlockedOutcome {
                influenced: self.exact_fallback(candidate, blocks, tau),
                positions_evaluated: n,
                positions_skipped: 0,
                blocks_pruned: 0,
                fell_back_to_exact: true,
            },
        )
    }

    /// Influence tests for a whole candidate tile against one object,
    /// in a single call.
    ///
    /// Verdict bit `j` of the returned mask corresponds to
    /// `candidates[j]` and is always identical to
    /// [`Self::influences_log_blocked`] on that pair; the counters are
    /// the tile-aggregated outcome fields. The point of the batch is the
    /// O(1) object-level pre-check: the object MBR and the
    /// register-resident [`TileCutoffs`] (two precomputed squared-distance
    /// thresholds) stay live while the tile sweeps over them, so the
    /// clearly-near and clearly-far candidates — the bulk of a validation
    /// workload — cost two distance computations and two compares each,
    /// with no table loads and no per-pair re-setup. `cutoffs` must come
    /// from [`LogPfTable::tile_cutoffs`] for this view's position count
    /// and this `tau` (debug-asserted). Undecided candidates fall through
    /// to the full per-pair kernel.
    // pinocchio-hot: the tile dispatch of the log-blocked validation path
    pub fn influences_log_blocked_tile(
        &self,
        candidates: &[Point],
        blocks: &SoaBlocks<'_>,
        tau: f64,
        table: &LogPfTable,
        cutoffs: TileCutoffs,
        scratch: &mut LogScratch,
    ) -> LogTileOutcome {
        debug_assert!(candidates.len() <= 32, "tile exceeds the mask width");
        if candidates.is_empty() {
            return LogTileOutcome::default();
        }
        debug_assert_eq!(
            cutoffs,
            table.tile_cutoffs(blocks.len(), tau),
            "cutoffs must match this view and tau"
        );
        let n = blocks.len();
        let nblocks = blocks.block_count();

        let mut out = LogTileOutcome::default();
        #[allow(clippy::cast_possible_truncation)]
        let full = u32::MAX >> (32 - candidates.len() as u32); // pinocchio-lint: allow(cast-truncation) -- tile width is capped at 32 (debug-asserted above), far below u32::MAX
        let mut undecided = full;
        match blocks.object_mbr() {
            Some(om) if n > 0 => {
                // Branch-free sweep: both cutoff compares for every
                // candidate, folded into verdict masks (the two sides are
                // mutually exclusive — a pair cannot certify both — so
                // the influenced side takes priority bit-for-bit with the
                // sequential check). Accounting is popcount × n.
                let mut influenced = 0u32;
                let mut not_influenced = 0u32;
                for (j, c) in candidates.iter().enumerate() {
                    let (s_min, s_max) = om.min_max_dist_sq(c);
                    let inf = s_max < cutoffs.influenced_below;
                    let far = s_min >= cutoffs.not_influenced_at;
                    influenced |= u32::from(inf) << j;
                    not_influenced |= u32::from(!inf & far) << j;
                }
                let decided = influenced | not_influenced;
                out.influenced_mask |= influenced;
                out.positions_skipped += decided.count_ones() as usize * n;
                out.blocks_pruned += decided.count_ones() as usize * nblocks;
                undecided = full & !decided;
                #[cfg(debug_assertions)]
                {
                    let mut m = decided;
                    while m != 0 {
                        let j = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let _ = self.log_checked(
                            &candidates[j],
                            blocks,
                            tau,
                            LogBlockedOutcome {
                                influenced: influenced >> j & 1 == 1,
                                positions_evaluated: 0,
                                positions_skipped: n,
                                blocks_pruned: nblocks,
                                fell_back_to_exact: false,
                            },
                        );
                    }
                }
            }
            _ => {}
        }

        let mut m = undecided;
        while m != 0 {
            let j = m.trailing_zeros() as usize;
            m &= m - 1;
            // The cutoff compares above are exactly the wrapper's object
            // pre-check, so survivors enter the bounding passes directly
            // with the memoised thresholds — no `ln_1p`, no band
            // recompute, no repeated MBR check per undecided pair.
            let o = self.log_blocked_bounded(
                &candidates[j],
                blocks,
                tau,
                table,
                cutoffs.thr_inf,
                cutoffs.thr_not,
                scratch,
            );
            out.influenced_mask |= u32::from(o.influenced) << j;
            out.positions_evaluated += o.positions_evaluated;
            out.positions_skipped += o.positions_skipped;
            out.blocks_pruned += o.blocks_pruned;
            out.band_fallbacks += u32::from(o.fell_back_to_exact);
        }
        out
    }

    /// Chunked log-domain influence test for the dynamic maintenance
    /// path: a branch-free table sum over `PositionLog`-style chunks
    /// with a per-chunk influenced exit, deciding only outside the
    /// guard band.
    ///
    /// Returns `None` when the final sum lands inside the band — the
    /// caller must then re-evaluate with the exact
    /// [`Self::influences_early_stop_chunked`] (the chunk iterator is
    /// consumed, so the fallback needs a fresh one). A `Some` verdict
    /// is always identical to the exact evaluator's; the evaluated
    /// count may differ from the scalar early stop's (the exit here is
    /// per chunk, not per position) and the outcome therefore never
    /// carries a product.
    // pinocchio-hot: per-(candidate, object) log-domain kernel of the dynamic path
    pub fn try_influences_log_chunked<'a>(
        &self,
        candidate: &Point,
        chunks: impl IntoIterator<Item = &'a [Point]>,
        tau: f64,
        table: &LogPfTable,
    ) -> Option<EarlyStopOutcome> {
        let l = ln_one_minus(tau);
        let mut sum = 0.0f64;
        let mut evaluated = 0usize;
        for chunk in chunks {
            const LANES: usize = 4;
            let mut acc = [0.0f64; LANES];
            let mut it = chunk.chunks_exact(LANES);
            for row in &mut it {
                for lane in 0..LANES {
                    let dx = row[lane].x - candidate.x;
                    let dy = row[lane].y - candidate.y;
                    acc[lane] += table.eval(dx * dx + dy * dy);
                }
            }
            let mut tail = 0.0f64;
            for p in it.remainder() {
                let dx = p.x - candidate.x;
                let dy = p.y - candidate.y;
                tail += table.eval(dx * dx + dy * dy);
            }
            sum += (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail;
            evaluated += chunk.len();
            // Per-chunk influenced exit: the unseen chunks' true
            // contributions are ≤ 0, and the band over the positions
            // seen so far dominates their accumulated table error.
            if sum <= l - guard_band(evaluated, table.eps, tau) {
                return Some(EarlyStopOutcome::from_verdict(true, evaluated));
            }
        }
        let band = guard_band(evaluated, table.eps, tau);
        if sum >= l + band {
            return Some(EarlyStopOutcome::from_verdict(false, evaluated));
        }
        None
    }

    /// Debug-mode contract check: the verdict must match the exhaustive
    /// scalar verdict, and the position accounting must be total.
    /// Release builds return the outcome untouched.
    #[inline]
    fn log_checked(
        &self,
        candidate: &Point,
        blocks: &SoaBlocks<'_>,
        tau: f64,
        outcome: LogBlockedOutcome,
    ) -> LogBlockedOutcome {
        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(
                outcome.positions_evaluated + outcome.positions_skipped,
                blocks.len(),
                "position accounting must be total"
            );
            debug_assert_eq!(
                outcome.influenced,
                self.exact_fallback(candidate, blocks, tau),
                "log-blocked verdict diverges from the scalar verdict (tau = {tau})"
            );
        }
        let _ = (candidate, blocks, tau);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alt::{ConcavePf, ConvexPf, LinearPf, LogsigPf};
    use crate::block::BlockScratch;
    use crate::pf::PowerLawPf;
    use pinocchio_geo::Mbr;

    fn soa(points: &[(f64, f64)], block_size: usize) -> (Vec<f64>, Vec<f64>, Vec<Mbr>) {
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        let mbrs = xs
            .chunks(block_size)
            .zip(ys.chunks(block_size))
            .map(|(cx, cy)| {
                let pts: Vec<Point> = cx.iter().zip(cy).map(|(&x, &y)| Point::new(x, y)).collect();
                Mbr::from_points(&pts).unwrap()
            })
            .collect();
        (xs, ys, mbrs)
    }

    fn eval() -> CumulativeProbability<PowerLawPf, Euclidean> {
        CumulativeProbability::new(PowerLawPf::paper_default(), Euclidean)
    }

    fn grid(n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| ((i % 7) as f64 * 0.8, (i / 7) as f64 * 0.6))
            .collect()
    }

    #[test]
    fn ln_one_minus_matches_ln1p() {
        for x in [0.0, 1e-12, 0.3, 0.7, 0.999999] {
            assert_eq!(ln_one_minus(x).to_bits(), (-x).ln_1p().to_bits());
        }
        assert_eq!(ln_one_minus(1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn log_non_influence_matches_definition() {
        let pf = PowerLawPf::paper_default();
        for d in [0.0, 0.5, 3.0, 100.0] {
            let expect = (1.0 - pf.prob(d)).ln();
            assert!((log_non_influence(&pf, d) - expect).abs() < 1e-12, "d={d}");
        }
    }

    /// Satellite pin: the paper-default power-law table must stay
    /// tight. The bound is deliberately loose against the measured
    /// value (~2e-6 at 32 segments/octave) so rebuild jitter cannot
    /// flake, but tight enough that a structural regression (coarser
    /// segments, broken fit) fails loudly.
    #[test]
    fn power_law_table_error_is_pinned() {
        let table = LogPfTable::try_new(&PowerLawPf::paper_default()).unwrap();
        assert!(
            table.eps() < 1e-5,
            "table error bound regressed: {}",
            table.eps()
        );
        // The stored eps must actually dominate the observed error on
        // an adversarial sweep (including the clamped ends and s = 0).
        let pf = PowerLawPf::paper_default();
        let g = |s: f64| ln_one_minus(pf.prob(s.sqrt()));
        let mut worst = 0.0f64;
        let mut s = 0.0f64;
        let mut k = 0u64;
        while s < 1e21 {
            let err = (table.eval(s) - g(s)).abs();
            if err > worst {
                worst = err;
            }
            k += 1;
            s = 1e-21 * (1.0 + k as f64 * 0.37) * (1.7f64).powi((k % 160) as i32);
        }
        assert!(
            worst <= table.eps(),
            "observed error {worst} exceeds the stored bound {}",
            table.eps()
        );
    }

    #[test]
    fn table_refuses_divergent_pf() {
        /// PF(0) = 1 makes g(0) = −∞; the table must refuse to build.
        #[derive(Debug)]
        struct Saturated;
        impl ProbabilityFunction for Saturated {
            fn prob(&self, d: f64) -> f64 {
                (1.0 - d).clamp(0.0, 1.0)
            }
            fn inverse(&self, p: f64) -> Option<f64> {
                (0.0..=1.0).contains(&p).then_some(1.0 - p)
            }
            fn name(&self) -> &'static str {
                "saturated"
            }
        }
        assert!(LogPfTable::try_new(&Saturated).is_none());
    }

    #[test]
    fn verdict_matches_scalar_everywhere() {
        let e = eval();
        let table = LogPfTable::try_new(e.pf()).unwrap();
        let mut scratch = LogScratch::default();
        for n in [1usize, 3, 16, 17, 50, 100] {
            let pts = grid(n);
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let (xs, ys, mbrs) = soa(&pts, 16);
            let view = SoaBlocks::new(&xs, &ys, &mbrs, 16);
            for tau in [0.1, 0.3, 0.5, 0.7, 0.9] {
                for cx in [-50.0, -3.0, 0.0, 2.5, 40.0, 400.0] {
                    let c = Point::new(cx, 1.0);
                    let scalar = e.influences(&c, &points, tau);
                    let out = e.influences_log_blocked(&c, &view, tau, &table, &mut scratch);
                    assert_eq!(out.influenced, scalar, "n={n} tau={tau} cx={cx}");
                    assert_eq!(
                        out.positions_evaluated + out.positions_skipped,
                        n,
                        "position accounting must be total"
                    );
                }
            }
        }
    }

    #[test]
    fn verdict_matches_scalar_for_alternative_pfs() {
        let pts = grid(48);
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let (xs, ys, mbrs) = soa(&pts, 16);
        let view = SoaBlocks::new(&xs, &ys, &mbrs, 16);
        let mut scratch = LogScratch::default();

        fn check<P: ProbabilityFunction>(
            pf: P,
            points: &[Point],
            view: &SoaBlocks<'_>,
            scratch: &mut LogScratch,
        ) {
            let e = CumulativeProbability::new(pf, Euclidean);
            let table = LogPfTable::try_new(e.pf()).expect("table must build");
            for tau in [0.2, 0.5, 0.8] {
                for cx in [-10.0, 0.5, 3.0, 8.0, 60.0] {
                    let c = Point::new(cx, 0.7);
                    assert_eq!(
                        e.influences_log_blocked(&c, view, tau, &table, scratch)
                            .influenced,
                        e.influences(&c, points, tau),
                        "pf={} tau={tau} cx={cx}",
                        e.pf().name()
                    );
                }
            }
        }
        check(PowerLawPf::with_lambda(0.75), &points, &view, &mut scratch);
        check(PowerLawPf::with_lambda(1.25), &points, &view, &mut scratch);
        check(LogsigPf::new(0.9, 6.0), &points, &view, &mut scratch);
        check(ConvexPf::new(0.9, 6.0), &points, &view, &mut scratch);
        check(ConcavePf::new(0.9, 6.0), &points, &view, &mut scratch);
        check(LinearPf::new(0.9, 6.0), &points, &view, &mut scratch);
    }

    /// Satellite pin: a τ sitting exactly on the pair's cumulative
    /// probability lands inside the guard band, so the kernel must
    /// resolve it through the exact fallback (and still agree with the
    /// scalar verdict).
    #[test]
    fn guard_band_falls_back_on_boundary_tau() {
        let e = eval();
        let table = LogPfTable::try_new(e.pf()).unwrap();
        let mut scratch = LogScratch::default();
        let pts = grid(40);
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let (xs, ys, mbrs) = soa(&pts, 16);
        let view = SoaBlocks::new(&xs, &ys, &mbrs, 16);
        let c = Point::new(6.0, 2.0);
        let tau = e.cumulative(&c, &points); // exactly on the boundary
        let out = e.influences_log_blocked(&c, &view, tau, &table, &mut scratch);
        assert!(out.fell_back_to_exact, "boundary tau must fall back");
        assert_eq!(out.positions_evaluated, 40);
        assert_eq!(out.positions_skipped, 0);
        assert_eq!(out.influenced, e.influences(&c, &points, tau));
    }

    #[test]
    fn far_candidate_prunes_every_block() {
        let e = eval();
        let table = LogPfTable::try_new(e.pf()).unwrap();
        let pts = grid(64);
        let (xs, ys, mbrs) = soa(&pts, 16);
        let view = SoaBlocks::new(&xs, &ys, &mbrs, 16);
        let out = e.influences_log_blocked(
            &Point::new(1000.0, 1000.0),
            &view,
            0.7,
            &table,
            &mut LogScratch::default(),
        );
        assert!(!out.influenced);
        assert!(!out.fell_back_to_exact);
        assert_eq!(out.positions_evaluated, 0);
        assert_eq!(out.positions_skipped, 64);
        assert_eq!(out.blocks_pruned, 4);
    }

    #[test]
    fn near_candidate_decides_from_bounds_alone() {
        let e = eval();
        let table = LogPfTable::try_new(e.pf()).unwrap();
        let pts = grid(160);
        let (xs, ys, mbrs) = soa(&pts, 16);
        let view = SoaBlocks::new(&xs, &ys, &mbrs, 16);
        let out = e.influences_log_blocked(
            &Point::new(0.8, 0.3),
            &view,
            0.3,
            &table,
            &mut LogScratch::default(),
        );
        assert!(out.influenced);
        assert_eq!(out.positions_evaluated, 0, "bounds alone should decide");
        assert_eq!(out.positions_skipped, 160);
    }

    #[test]
    fn agrees_with_product_space_blocked_kernel() {
        let e = eval();
        let table = LogPfTable::try_new(e.pf()).unwrap();
        let mut log_scratch = LogScratch::default();
        let mut blk_scratch = BlockScratch::default();
        let pts = grid(80);
        let (xs, ys, mbrs) = soa(&pts, 16);
        let view = SoaBlocks::new(&xs, &ys, &mbrs, 16);
        for tau in [0.2, 0.5, 0.8, 0.95] {
            for cx in [-20.0, 0.5, 3.0, 9.0, 200.0] {
                let c = Point::new(cx, 0.4);
                let log = e.influences_log_blocked(&c, &view, tau, &table, &mut log_scratch);
                let blk = e.influences_blocked(&c, &view, tau, &mut blk_scratch);
                assert_eq!(log.influenced, blk.influenced, "tau={tau} cx={cx}");
            }
        }
    }

    #[test]
    fn chunked_variant_matches_exact_verdicts() {
        let e = eval();
        let table = LogPfTable::try_new(e.pf()).unwrap();
        let positions: Vec<Point> = (0..50).map(|i| Point::new(i as f64, 0.0)).collect();
        for tau in [0.1, 0.5, 0.7, 0.99] {
            for cx in [0.0, 5.0, 25.0, 100.0] {
                let c = Point::new(cx, 2.0);
                let exact = e.influences(&c, &positions, tau);
                for chunk_size in [1, 3, 7, 50, 64] {
                    match e.try_influences_log_chunked(
                        &c,
                        positions.chunks(chunk_size),
                        tau,
                        &table,
                    ) {
                        Some(out) => {
                            assert_eq!(out.influenced, exact, "tau={tau} cx={cx}");
                            assert!(out.positions_evaluated <= positions.len());
                            assert_eq!(out.non_influence_product, None);
                        }
                        None => {
                            // In-band: the caller's fallback must agree.
                            let fb = e.influences_early_stop_chunked(
                                &c,
                                positions.chunks(chunk_size),
                                tau,
                            );
                            assert_eq!(fb.influenced, exact);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn chunked_boundary_tau_is_undecided() {
        let e = eval();
        let table = LogPfTable::try_new(e.pf()).unwrap();
        let positions: Vec<Point> = (0..20).map(|i| Point::new(i as f64 * 0.9, 0.3)).collect();
        let c = Point::new(4.0, 0.0);
        let tau = e.cumulative(&c, &positions);
        assert!(
            e.try_influences_log_chunked(&c, positions.chunks(7), tau, &table)
                .is_none(),
            "a boundary tau must land inside the band"
        );
    }

    #[test]
    fn chunked_near_candidate_exits_early() {
        let e = eval();
        let table = LogPfTable::try_new(e.pf()).unwrap();
        let positions: Vec<Point> = (0..640).map(|i| Point::new(i as f64, 0.0)).collect();
        let out = e
            .try_influences_log_chunked(&Point::ORIGIN, positions.chunks(64), 0.7, &table)
            .expect("far from the boundary");
        assert!(out.influenced);
        assert!(
            out.positions_evaluated <= 64,
            "influence is certain after the first chunk: {}",
            out.positions_evaluated
        );
    }

    #[test]
    fn empty_view_is_never_influenced() {
        let e = eval();
        let table = LogPfTable::try_new(e.pf()).unwrap();
        let view = SoaBlocks::new(&[], &[], &[], 16);
        let out = e.influences_log_blocked(
            &Point::ORIGIN,
            &view,
            0.5,
            &table,
            &mut LogScratch::default(),
        );
        assert!(!out.influenced);
        assert_eq!(out.positions_evaluated + out.positions_skipped, 0);
    }
}
