//! The structured diagnostic model shared by every rule.

use serde_json::{json, Value};
use std::fmt;

/// How a diagnostic affects the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Reported but does not fail the run.
    Warn,
    /// Fails the run (exit code 1).
    Deny,
}

impl Severity {
    /// Lower-case label used in text and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One finding: rule id, severity, location, message and an optional
/// suggested fix.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule identifier (e.g. `panic-path`). One of [`RULES`] or
    /// the meta-rule `suppression-hygiene`.
    pub rule: &'static str,
    /// Whether this finding fails the run.
    pub severity: Severity,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the rule has a concrete recommendation.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Builds a deny-severity diagnostic.
    pub fn deny(rule: &'static str, file: &str, line: usize, message: String) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Deny,
            file: file.to_string(),
            line,
            message,
            suggestion: None,
        }
    }

    /// Attaches a suggested fix.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// The diagnostic as a JSON object (for `--format json`).
    pub fn to_json(&self) -> Value {
        let mut map = serde_json::Map::new();
        map.insert("rule".to_string(), json!(self.rule));
        map.insert("severity".to_string(), json!(self.severity.label()));
        map.insert("file".to_string(), json!(self.file.as_str()));
        map.insert("line".to_string(), json!(self.line as u64));
        map.insert("message".to_string(), json!(self.message.as_str()));
        map.insert(
            "suggestion".to_string(),
            match &self.suggestion {
                Some(s) => json!(s.as_str()),
                None => Value::Null,
            },
        );
        Value::Object(map)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: [{}] {}:{}: {}",
            self.severity.label(),
            self.rule,
            self.file,
            self.line,
            self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n    help: {s}")?;
        }
        Ok(())
    }
}

/// One entry in the rule registry: stable id, a one-line description
/// (shown by `lint --list-rules`), the default severity, and whether the
/// rule is the suppression meta-rule (always on, never selectable).
#[derive(Debug, Clone, Copy)]
pub struct RuleSpec {
    /// Stable rule identifier (e.g. `panic-path`).
    pub id: &'static str,
    /// One-line description for `--list-rules`.
    pub summary: &'static str,
    /// Severity every finding of this rule carries by default.
    pub default_severity: Severity,
    /// Meta-rules run unconditionally and cannot be selected or
    /// suppressed away; today that is only `suppression-hygiene`.
    pub meta: bool,
}

/// The rule registry, in documentation order. Adding a rule here is the
/// single registration step: `is_known_rule`, `--list-rules`, and the
/// default rule set all derive from this table.
pub const RULES: [RuleSpec; 11] = [
    RuleSpec {
        id: "panic-path",
        summary: "panicking constructs / arithmetic indexing in panic-free library crates",
        default_severity: Severity::Deny,
        meta: false,
    },
    RuleSpec {
        id: "float-soundness",
        summary: "float-literal equality, NaN literals, panicking partial_cmp chains",
        default_severity: Severity::Deny,
        meta: false,
    },
    RuleSpec {
        id: "atomic-ordering",
        summary: "undocumented atomic orderings; Ordering::Relaxed is deny-by-default",
        default_severity: Severity::Deny,
        meta: false,
    },
    RuleSpec {
        id: "crate-hygiene",
        summary: "crate roots must forbid(unsafe_code) and deny(missing_docs)",
        default_severity: Severity::Deny,
        meta: false,
    },
    RuleSpec {
        id: "stats-accounting",
        summary: "instrumented entry points must account into their stats block",
        default_severity: Severity::Deny,
        meta: false,
    },
    RuleSpec {
        id: "lock-ordering",
        summary: "inconsistent or cyclic nested lock-acquisition orders across a crate",
        default_severity: Severity::Deny,
        meta: false,
    },
    RuleSpec {
        id: "condvar-discipline",
        summary: "Condvar waits must sit in a predicate-rechecking loop and consume the result",
        default_severity: Severity::Deny,
        meta: false,
    },
    RuleSpec {
        id: "bounded-io",
        summary: "unbounded reads / buffer growth on network-fed readers",
        default_severity: Severity::Deny,
        meta: false,
    },
    RuleSpec {
        id: "hot-path-alloc",
        summary: "heap allocation inside `// pinocchio-hot` functions (one call level deep)",
        default_severity: Severity::Deny,
        meta: false,
    },
    RuleSpec {
        id: "cast-truncation",
        summary: "lossy `as` casts in non-test code",
        default_severity: Severity::Deny,
        meta: false,
    },
    RuleSpec {
        id: "suppression-hygiene",
        summary: "suppressions must carry a justification and name a known rule",
        default_severity: Severity::Deny,
        meta: true,
    },
];

/// The meta-rule id for malformed `pinocchio-lint` suppressions.
pub const SUPPRESSION_RULE: &str = "suppression-hygiene";

/// The selectable (non-meta) rule ids, in registry order.
pub fn default_rule_ids() -> Vec<&'static str> {
    RULES.iter().filter(|r| !r.meta).map(|r| r.id).collect()
}

/// Whether `name` is a known rule id (including the meta-rule).
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.id == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_rule_location_and_suggestion() {
        let d = Diagnostic::deny("panic-path", "crates/core/src/vo.rs", 12, "no".to_string())
            .with_suggestion("yes");
        let text = d.to_string();
        assert!(text.contains("[panic-path]"));
        assert!(text.contains("crates/core/src/vo.rs:12"));
        assert!(text.contains("help: yes"));
    }

    #[test]
    fn json_shape() {
        let d = Diagnostic::deny("atomic-ordering", "a.rs", 3, "msg".to_string());
        let v = d.to_json();
        assert_eq!(
            v.get("rule").and_then(Value::as_str),
            Some("atomic-ordering")
        );
        assert_eq!(v.get("line").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("suggestion"), Some(&Value::Null));
    }

    #[test]
    fn rule_registry() {
        assert!(is_known_rule("float-soundness"));
        assert!(is_known_rule("lock-ordering"));
        assert!(is_known_rule("cast-truncation"));
        assert!(is_known_rule(SUPPRESSION_RULE));
        assert!(!is_known_rule("made-up"));
    }

    #[test]
    fn default_rules_exclude_the_meta_rule_and_keep_registry_order() {
        let ids = default_rule_ids();
        assert_eq!(ids.len(), RULES.len() - 1);
        assert!(!ids.contains(&SUPPRESSION_RULE));
        assert_eq!(ids.first(), Some(&"panic-path"));
        assert_eq!(ids.last(), Some(&"cast-truncation"));
        // Every id is unique and every spec has a non-empty summary.
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
        assert!(RULES.iter().all(|r| !r.summary.is_empty()));
    }
}
