//! File collection, rule dispatch, suppression filtering and reporting.
//!
//! Linting is two-phase: every file is parsed into a
//! [`FileAnalysis`] (line classification + function spans) first, then
//! the per-file rules run file by file and the workspace rules
//! (`lock-ordering`, `hot-path-alloc`) run over the whole set — their
//! graphs span files, so even a `--changed`-scoped run parses
//! everything and only filters the *reported* diagnostics.

use crate::conc;
use crate::diag::{default_rule_ids, Diagnostic, Severity};
use crate::rules::check_file;
use crate::source::SourceFile;
use crate::span::FileAnalysis;
use serde_json::{json, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

/// What to lint and with which rules.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root (the directory holding `crates/` and `src/`).
    pub root: PathBuf,
    /// Rule ids to run; defaults to every selectable rule.
    pub rules: Vec<&'static str>,
    /// When set, only diagnostics in these repo-relative files are
    /// reported (the whole workspace is still parsed — workspace rules
    /// need the full graph). This is the `--changed` mode.
    pub scope: Option<BTreeSet<String>>,
}

impl LintConfig {
    /// All rules over the workspace rooted at `root`.
    pub fn all(root: impl Into<PathBuf>) -> Self {
        LintConfig {
            root: root.into(),
            rules: default_rule_ids(),
            scope: None,
        }
    }

    /// A single rule over the workspace rooted at `root`.
    pub fn only(root: impl Into<PathBuf>, rule: &'static str) -> Self {
        LintConfig {
            root: root.into(),
            rules: vec![rule],
            scope: None,
        }
    }
}

/// The outcome of a lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Diagnostics that survived suppression, sorted by
    /// (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the run must fail (any deny-severity diagnostic).
    pub fn has_denials(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny)
    }

    /// Count of deny-severity diagnostics.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// The report as a JSON object (`--format json`).
    pub fn to_json(&self) -> Value {
        let mut map = serde_json::Map::new();
        map.insert(
            "diagnostics".to_string(),
            Value::Array(self.diagnostics.iter().map(Diagnostic::to_json).collect()),
        );
        map.insert(
            "files_scanned".to_string(),
            json!(self.files_scanned as u64),
        );
        map.insert("deny_count".to_string(), json!(self.deny_count() as u64));
        map.insert(
            "warn_count".to_string(),
            json!((self.diagnostics.len() - self.deny_count()) as u64),
        );
        Value::Object(map)
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} deny, {} warn\n",
            self.files_scanned,
            self.deny_count(),
            self.diagnostics.len() - self.deny_count()
        ));
        out
    }
}

/// Collects the `.rs` files to lint: everything under `<root>/crates`
/// and `<root>/src`, excluding `vendor/`, `target/` and test fixture
/// trees (`…/fixtures/…`). Paths come back sorted and repo-relative.
pub fn collect_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        walk(&root.join(top), &mut files);
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).ok().map(PathBuf::from))
        .collect();
    rel.sort();
    rel
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "vendor" | "target" | "fixtures" | ".git") {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// The repo-relative files changed versus `base` (committed, staged or
/// untracked), for `lint --changed`. Returns `None` when git is
/// unavailable or `base` does not resolve — the caller falls back to a
/// full lint rather than silently passing.
pub fn changed_files(root: &Path, base: &str) -> Option<BTreeSet<String>> {
    let run = |args: &[&str]| -> Option<String> {
        let out = std::process::Command::new("git")
            .args(args)
            .current_dir(root)
            .output()
            .ok()?;
        if !out.status.success() {
            return None;
        }
        String::from_utf8(out.stdout).ok()
    };
    let diff = run(&["diff", "--name-only", base])?;
    let untracked = run(&["ls-files", "--others", "--exclude-standard"]).unwrap_or_default();
    let mut set = BTreeSet::new();
    for line in diff.lines().chain(untracked.lines()) {
        let line = line.trim();
        if !line.is_empty() {
            set.insert(line.to_string());
        }
    }
    Some(set)
}

/// Runs the configured rules over the workspace and returns the report.
/// Unreadable files are skipped (they cannot carry violations the
/// compiler would accept either).
pub fn lint(config: &LintConfig) -> LintReport {
    let paths = collect_files(&config.root);
    let mut analyses: Vec<FileAnalysis> = Vec::new();
    for rel in &paths {
        let Ok(text) = fs::read_to_string(config.root.join(rel)) else {
            continue;
        };
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        analyses.push(FileAnalysis::parse(&rel_str, &text));
    }
    let files_scanned = analyses.len();
    let mut diagnostics = Vec::new();
    for a in &analyses {
        // Malformed suppressions are reported regardless of rule subset:
        // they are an audit-trail failure, not a rule finding.
        diagnostics.extend(a.source.suppression_diagnostics());
        diagnostics.extend(
            check_file(&a.source, &config.rules)
                .into_iter()
                .chain(conc::check_file_spans(a, &config.rules))
                .filter(|d| !a.source.is_suppressed(d.rule, d.line)),
        );
    }
    // Workspace rules report into arbitrary files; route each finding
    // through that file's own suppressions.
    let sources: BTreeMap<&str, &SourceFile> = analyses
        .iter()
        .map(|a| (a.source.path.as_str(), &a.source))
        .collect();
    diagnostics.extend(
        conc::check_workspace(&analyses, &config.rules)
            .into_iter()
            .filter(|d| {
                sources
                    .get(d.file.as_str())
                    .map(|s| !s.is_suppressed(d.rule, d.line))
                    .unwrap_or(true)
            }),
    );
    if let Some(scope) = &config.scope {
        diagnostics.retain(|d| scope.contains(&d.file));
    }
    diagnostics
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    LintReport {
        diagnostics,
        files_scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a throwaway mini-workspace under the target temp dir.
    fn scratch_workspace(tag: &str, files: &[(&str, &str)]) -> PathBuf {
        let root = std::env::temp_dir().join(format!("xtask-engine-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        for (rel, text) in files {
            let path = root.join(rel);
            fs::create_dir_all(path.parent().expect("files live under root")).expect("mkdir");
            fs::write(path, text).expect("write fixture");
        }
        root
    }

    #[test]
    fn end_to_end_lint_flags_and_suppresses() {
        let root = scratch_workspace(
            "e2e",
            &[
                (
                    "crates/core/src/lib.rs",
                    "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn ok() {}\n",
                ),
                (
                    "crates/core/src/bad.rs",
                    "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
                ),
                (
                    "crates/core/src/allowed.rs",
                    "pub fn g(x: Option<u32>) -> u32 {\n    x.unwrap() // pinocchio-lint: allow(panic-path) -- builder guarantees Some\n}\n",
                ),
                ("vendor/fake/src/lib.rs", "pub fn v() { x.unwrap(); }\n"),
            ],
        );
        let report = lint(&LintConfig::all(&root));
        assert_eq!(report.files_scanned, 3, "vendor must be excluded");
        let rules: Vec<&str> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"panic-path"));
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.file.contains("allowed.rs")),
            "justified suppression must silence the finding"
        );
        assert!(report.has_denials());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unjustified_suppression_fails_even_with_rule_subset() {
        let root = scratch_workspace(
            "nojust",
            &[(
                "crates/core/src/bad.rs",
                "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // pinocchio-lint: allow(panic-path)\n}\n",
            )],
        );
        // Even when only crate-hygiene is requested, the malformed
        // suppression is still reported…
        let report = lint(&LintConfig::only(&root, "crate-hygiene"));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "suppression-hygiene"));
        // …and the unjustified allow does not silence panic-path.
        let full = lint(&LintConfig::all(&root));
        assert!(full.diagnostics.iter().any(|d| d.rule == "panic-path"));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn workspace_rules_report_across_files_and_respect_suppressions() {
        let ab = "pub fn ab(s: &S) {\n    let g = s.alpha.lock().unwrap_or_else(|p| p.into_inner());\n    let h = s.beta.lock().unwrap_or_else(|p| p.into_inner());\n}\n";
        let ba = "pub fn ba(s: &S) {\n    let g = s.beta.lock().unwrap_or_else(|p| p.into_inner());\n    let h = s.alpha.lock().unwrap_or_else(|p| p.into_inner());\n}\n";
        let root = scratch_workspace(
            "lockord",
            &[("crates/serve/src/a.rs", ab), ("crates/serve/src/b.rs", ba)],
        );
        let report = lint(&LintConfig::only(&root, "lock-ordering"));
        assert_eq!(
            report
                .diagnostics
                .iter()
                .filter(|d| d.rule == "lock-ordering")
                .count(),
            2,
            "{:?}",
            report.diagnostics
        );
        // A justified suppression on the flagged line silences that side.
        let ba_suppressed = ba.replace(
            "    let h = s.alpha.lock().unwrap_or_else(|p| p.into_inner());",
            "    // pinocchio-lint: allow(lock-ordering) -- test justification\n    let h = s.alpha.lock().unwrap_or_else(|p| p.into_inner());",
        );
        let root2 = scratch_workspace(
            "lockord2",
            &[
                ("crates/serve/src/a.rs", ab),
                ("crates/serve/src/b.rs", ba_suppressed.as_str()),
            ],
        );
        let report2 = lint(&LintConfig::only(&root2, "lock-ordering"));
        let remaining: Vec<&Diagnostic> = report2
            .diagnostics
            .iter()
            .filter(|d| d.rule == "lock-ordering")
            .collect();
        assert_eq!(remaining.len(), 1, "{remaining:?}");
        assert!(remaining[0].file.ends_with("a.rs"));
        let _ = fs::remove_dir_all(&root);
        let _ = fs::remove_dir_all(&root2);
    }

    #[test]
    fn scope_filters_reported_files_but_scans_everything() {
        let bad = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let root = scratch_workspace(
            "scope",
            &[
                ("crates/core/src/one.rs", bad),
                ("crates/core/src/two.rs", bad),
            ],
        );
        let mut config = LintConfig::only(&root, "panic-path");
        config.scope = Some(["crates/core/src/one.rs".to_string()].into_iter().collect());
        let report = lint(&config);
        assert_eq!(report.files_scanned, 2, "everything is still parsed");
        assert!(!report.diagnostics.is_empty());
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.file.ends_with("one.rs")));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn diagnostics_come_back_sorted() {
        let root = scratch_workspace(
            "sorted",
            &[
                (
                    "crates/core/src/zz.rs",
                    "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
                ),
                (
                    "crates/core/src/aa.rs",
                    "pub fn g(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
                ),
            ],
        );
        let report = lint(&LintConfig::only(&root, "panic-path"));
        let files: Vec<&str> = report.diagnostics.iter().map(|d| d.file.as_str()).collect();
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
        let _ = fs::remove_dir_all(&root);
    }
}
