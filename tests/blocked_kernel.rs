//! Cross-kernel exactness: every solver, run with the blocked
//! structure-of-arrays kernel, must reproduce the scalar kernel's
//! results bit for bit — winner index, influence vectors, early-stop
//! verdicts — across random worlds, thresholds, thread counts, and the
//! adversarial tie-heavy / all-uninfluenceable corners. The solver loop
//! covers the paper's four algorithms plus the PIN-JOIN extension.

use pinocchio::data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
use pinocchio::prelude::*;

fn world(users: usize, candidates: usize, seed: u64) -> (Vec<MovingObject>, Vec<Point>) {
    let d = SyntheticGenerator::new(GeneratorConfig::small(users, seed)).generate();
    let (_, cands) = sample_candidate_group(&d, candidates, seed ^ 0xABCD);
    (d.objects().to_vec(), cands)
}

fn build(
    objects: Vec<MovingObject>,
    candidates: Vec<Point>,
    tau: f64,
    kernel: EvalKernel,
) -> PrimeLs<PowerLawPf> {
    PrimeLs::builder()
        .objects(objects)
        .candidates(candidates)
        .probability_function(PowerLawPf::paper_default())
        .tau(tau)
        .evaluation_kernel(kernel)
        .build()
        .unwrap()
}

/// Runs every solver under both kernels and asserts exact agreement on
/// everything answer-shaped (winners, influence counts, full influence
/// vectors, top-k rankings, weighted optima) for 1/2/8 threads.
fn assert_kernels_identical(
    objects: Vec<MovingObject>,
    candidates: Vec<Point>,
    tau: f64,
    ctx: &str,
) {
    let scalar = build(objects.clone(), candidates.clone(), tau, EvalKernel::Scalar);
    let blocked = build(objects, candidates, tau, EvalKernel::Blocked);

    for algorithm in Algorithm::WITH_EXTENSIONS {
        let s = scalar.solve(algorithm);
        let b = blocked.solve(algorithm);
        assert_eq!(
            (s.best_candidate, s.max_influence),
            (b.best_candidate, b.max_influence),
            "{algorithm} winner diverges under the blocked kernel ({ctx})"
        );
        assert_eq!(
            s.influences, b.influences,
            "{algorithm} influence vector diverges ({ctx})"
        );
        assert_eq!(
            s.stats.validated_pairs + s.stats.pairs_skipped_by_bounds,
            b.stats.validated_pairs + b.stats.pairs_skipped_by_bounds,
            "{algorithm}: identical verdicts must walk identical pair sequences ({ctx})"
        );
    }

    for threads in [1usize, 2, 8] {
        let s = pinocchio::core::parallel::solve_vo(&scalar, threads);
        let b = pinocchio::core::parallel::solve_vo(&blocked, threads);
        assert_eq!(
            (s.best_candidate, s.max_influence),
            (b.best_candidate, b.max_influence),
            "parallel VO diverges (threads={threads}, {ctx})"
        );
        let s = pinocchio::core::parallel::solve_naive(&scalar, threads);
        let b = pinocchio::core::parallel::solve_naive(&blocked, threads);
        assert_eq!(
            s.influences, b.influences,
            "parallel NA (threads={threads}, {ctx})"
        );
        let s = pinocchio::core::parallel::solve_pinocchio(&scalar, threads);
        let b = pinocchio::core::parallel::solve_pinocchio(&blocked, threads);
        assert_eq!(
            s.influences, b.influences,
            "parallel PIN (threads={threads}, {ctx})"
        );
        let s = pinocchio::core::join::solve_par(&scalar, threads);
        let b = pinocchio::core::join::solve_par(&blocked, threads);
        assert_eq!(
            (s.best_candidate, s.max_influence),
            (b.best_candidate, b.max_influence),
            "parallel PIN-JOIN diverges (threads={threads}, {ctx})"
        );
    }

    for k in [1usize, 5] {
        let s = pinocchio::core::solve_top_k(&scalar, k);
        let b = pinocchio::core::solve_top_k(&blocked, k);
        assert_eq!(s, b, "top-{k} ranking diverges ({ctx})");
    }

    let weights: Vec<f64> = (0..scalar.objects().len())
        .map(|i| 0.5 + (i % 7) as f64)
        .collect();
    let s = pinocchio::core::solve_weighted(&scalar, &weights);
    let b = pinocchio::core::solve_weighted(&blocked, &weights);
    assert_eq!(
        s.best_candidate, b.best_candidate,
        "weighted winner ({ctx})"
    );
    assert_eq!(
        s.weighted_influences, b.weighted_influences,
        "weighted influence vector ({ctx})"
    );
}

#[test]
fn kernels_agree_on_random_worlds() {
    for seed in [1u64, 7, 42, 1234] {
        for tau in [0.3, 0.5, 0.7] {
            let (objects, candidates) = world(70, 35, seed);
            assert_kernels_identical(objects, candidates, tau, &format!("seed={seed} tau={tau}"));
        }
    }
}

#[test]
fn kernels_agree_on_tie_heavy_worlds() {
    // Two mirror-image clusters with symmetric candidates: influence
    // ties everywhere, so any kernel-induced verdict flip would move the
    // smallest-index tie-break and fail loudly.
    let mut objects = Vec::new();
    for i in 0..12u64 {
        let base = (i % 2) as f64 * 10.0;
        objects.push(MovingObject::new(
            i,
            (0..20)
                .map(|k| Point::new(base + (k % 5) as f64 * 0.1, (k / 5) as f64 * 0.1))
                .collect(),
        ));
    }
    let candidates = vec![
        Point::new(10.2, 0.2),
        Point::new(0.2, 0.2),
        Point::new(10.2, 0.2),
        Point::new(5.0, 5.0),
    ];
    for tau in [0.3, 0.5, 0.7] {
        assert_kernels_identical(
            objects.clone(),
            candidates.clone(),
            tau,
            &format!("ties tau={tau}"),
        );
    }
}

#[test]
fn kernels_agree_on_all_uninfluenceable_worlds() {
    // τ = 0.95 > PF(0) = 0.9 with single-position objects: nothing can
    // ever be influenced; both kernels must return influence 0 at
    // candidate 0 through every solver.
    let objects: Vec<MovingObject> = (0..10)
        .map(|i| MovingObject::new(i, vec![Point::new(i as f64, -(i as f64))]))
        .collect();
    let candidates = vec![
        Point::new(1.0, 1.0),
        Point::new(2.0, 2.0),
        Point::new(3.0, 3.0),
    ];
    assert_kernels_identical(objects, candidates, 0.95, "all-uninfluenceable");
}

#[test]
fn blocked_position_accounting_is_total() {
    // Blocked-kernel invariant at solver level: for NA (which validates
    // every pair exhaustively) evaluated + skipped must equal the full
    // pair-position space, and some blocks must actually prune on a
    // spread-out world.
    let (objects, candidates) = world(60, 30, 9);
    let total_pair_positions: u64 = objects
        .iter()
        .map(|o| o.position_count() as u64)
        .sum::<u64>()
        * candidates.len() as u64;
    let blocked = build(objects, candidates, 0.7, EvalKernel::Blocked);
    let r = blocked.solve(Algorithm::Naive);
    assert_eq!(
        r.stats.positions_evaluated + r.stats.positions_skipped_by_blocks,
        total_pair_positions,
        "skipped + evaluated must cover every (pair, position)"
    );
    assert!(
        r.stats.blocks_pruned > 0,
        "expected some block-level pruning"
    );
    assert!(
        r.stats.positions_evaluated < total_pair_positions,
        "blocked NA should skip a nonzero share of positions"
    );
}

#[test]
fn early_stop_toggle_is_irrelevant_under_blocked_kernel() {
    // The blocked kernel subsumes Strategy 2; both toggle settings must
    // produce identical verdicts *and identical costs* (the kernel
    // ignores the flag), unlike the scalar path where the flag trades
    // positions for exactness bookkeeping.
    let (objects, candidates) = world(50, 25, 17);
    let blocked = build(objects, candidates, 0.5, EvalKernel::Blocked);
    let with_s2 = pinocchio::core::solve_with_options(&blocked, true, true);
    let without_s2 = pinocchio::core::solve_with_options(&blocked, true, false);
    assert_eq!(with_s2.best_candidate, without_s2.best_candidate);
    assert_eq!(with_s2.max_influence, without_s2.max_influence);
    assert_eq!(
        with_s2.stats, without_s2.stats,
        "the blocked kernel must ignore the early-stop flag entirely"
    );
}
