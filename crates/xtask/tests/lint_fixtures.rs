//! Fixture-driven integration tests for the lint engine.
//!
//! Each rule has a failing and a passing fixture under
//! `tests/fixtures/<rule>/{bad,good}.rs`. Fixtures are copied into a
//! throwaway mini-workspace (at a path that puts them in the rule's
//! scope) and linted through the same entry point the CLI uses, so
//! these tests cover collection, parsing, rule dispatch, suppression
//! filtering and reporting end to end.

use std::fs;
use std::path::{Path, PathBuf};
use xtask::{lint, LintConfig, LintReport, Severity};

fn fixture(rel: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Builds a throwaway mini-workspace holding the given files.
fn scratch(tag: &str, files: &[(&str, String)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("xtask-fixture-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    for (rel, text) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("fixtures live under root")).expect("mkdir");
        fs::write(path, text).expect("write fixture");
    }
    root
}

/// Lints a single fixture placed at `placed_at` inside a scratch
/// workspace and returns the report (scratch dir is cleaned up).
fn lint_fixture(tag: &str, placed_at: &str, fixture_rel: &str) -> LintReport {
    let root = scratch(tag, &[(placed_at, fixture(fixture_rel))]);
    let report = lint(&LintConfig::all(&root));
    let _ = fs::remove_dir_all(&root);
    report
}

fn rule_ids(report: &LintReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.rule).collect()
}

#[test]
fn panic_path_bad_trips_good_passes() {
    // Non-root path inside a panic-free crate: only panic-path applies.
    let bad = lint_fixture(
        "pp-bad",
        "crates/core/src/fixture_mod.rs",
        "panic_path/bad.rs",
    );
    let hits = rule_ids(&bad);
    assert_eq!(
        hits.iter().filter(|r| **r == "panic-path").count(),
        3,
        "unwrap, expect and arithmetic indexing must all trip: {bad:?}"
    );
    assert!(bad.has_denials());

    let good = lint_fixture(
        "pp-good",
        "crates/core/src/fixture_mod.rs",
        "panic_path/good.rs",
    );
    assert!(good.diagnostics.is_empty(), "{good:?}");
}

#[test]
fn panic_path_is_scoped_to_the_panic_free_crates() {
    // The same bad fixture in a crate outside the scope is not flagged.
    let report = lint_fixture(
        "pp-scope",
        "crates/eval/src/fixture_mod.rs",
        "panic_path/bad.rs",
    );
    assert!(
        !rule_ids(&report).contains(&"panic-path"),
        "eval is outside the panic-free scope: {report:?}"
    );
}

#[test]
fn float_soundness_bad_trips_good_passes() {
    let bad = lint_fixture(
        "fs-bad",
        "crates/geo/src/fixture_mod.rs",
        "float_soundness/bad.rs",
    );
    let hits = rule_ids(&bad);
    assert!(
        hits.iter().filter(|r| **r == "float-soundness").count() >= 3,
        "float ==/!=, partial_cmp unwrap and NAN literal must trip: {bad:?}"
    );

    let good = lint_fixture(
        "fs-good",
        "crates/geo/src/fixture_mod.rs",
        "float_soundness/good.rs",
    );
    assert!(good.diagnostics.is_empty(), "{good:?}");
}

#[test]
fn atomic_ordering_bad_trips_good_passes() {
    let bad = lint_fixture(
        "ao-bad",
        "crates/core/src/fixture_mod.rs",
        "atomic_ordering/bad.rs",
    );
    let hits = rule_ids(&bad);
    assert_eq!(
        hits.iter().filter(|r| **r == "atomic-ordering").count(),
        2,
        "the undocumented Release and the Relaxed must both trip: {bad:?}"
    );

    let good = lint_fixture(
        "ao-good",
        "crates/core/src/fixture_mod.rs",
        "atomic_ordering/good.rs",
    );
    assert!(good.diagnostics.is_empty(), "{good:?}");
}

#[test]
fn crate_hygiene_bad_trips_good_passes() {
    // Hygiene fixtures must sit at a crate root to be in scope.
    let bad = lint_fixture("ch-bad", "crates/core/src/lib.rs", "crate_hygiene/bad.rs");
    let hits = rule_ids(&bad);
    assert_eq!(
        hits.iter().filter(|r| **r == "crate-hygiene").count(),
        2,
        "both missing attributes must be reported: {bad:?}"
    );

    let good = lint_fixture("ch-good", "crates/core/src/lib.rs", "crate_hygiene/good.rs");
    assert!(good.diagnostics.is_empty(), "{good:?}");
}

#[test]
fn stats_accounting_bad_trips_good_passes() {
    let bad = lint_fixture(
        "sa-bad",
        "crates/core/src/fixture_solver.rs",
        "stats_accounting/bad.rs",
    );
    assert!(
        rule_ids(&bad).contains(&"stats-accounting"),
        "a solver entry point without SolveStats must trip: {bad:?}"
    );

    let good = lint_fixture(
        "sa-good",
        "crates/core/src/fixture_solver.rs",
        "stats_accounting/good.rs",
    );
    assert!(good.diagnostics.is_empty(), "{good:?}");
}

#[test]
fn stats_accounting_covers_shard_coordinator_entry_points() {
    let bad = lint_fixture(
        "sa-shard-bad",
        "crates/core/src/fixture_shard.rs",
        "stats_accounting/shard_bad.rs",
    );
    assert!(
        rule_ids(&bad).contains(&"stats-accounting"),
        "a fallible shard coordinator without SolveStats must trip: {bad:?}"
    );
    assert!(
        bad.diagnostics
            .iter()
            .any(|d| d.rule == "stats-accounting" && d.message.contains("fallible")),
        "the diagnostic must come from the `try_solve` contract: {bad:?}"
    );

    let good = lint_fixture(
        "sa-shard-good",
        "crates/core/src/fixture_shard.rs",
        "stats_accounting/shard_good.rs",
    );
    assert!(good.diagnostics.is_empty(), "{good:?}");

    // The shard fixture placed in serve is out of scope there: serve's
    // contract is about `pub fn serve…`, not solver coordinators.
    let cross = lint_fixture(
        "sa-shard-scope",
        "crates/serve/src/fixture_shard.rs",
        "stats_accounting/shard_bad.rs",
    );
    assert!(
        !rule_ids(&cross).contains(&"stats-accounting"),
        "`pub fn try_solve…` in serve is not a serve entry point: {cross:?}"
    );
}

#[test]
fn stats_accounting_covers_heatmap_entry_points() {
    let bad = lint_fixture(
        "sa-heatmap-bad",
        "crates/heatmap/src/fixture_heatmap.rs",
        "stats_accounting/heatmap_bad.rs",
    );
    assert!(
        rule_ids(&bad).contains(&"stats-accounting"),
        "a heat-map entry point without SolveStats must trip: {bad:?}"
    );
    let hits = bad
        .diagnostics
        .iter()
        .filter(|d| d.rule == "stats-accounting")
        .count();
    assert_eq!(
        hits, 2,
        "both the try_heatmap and try_top_region contracts must trip: {bad:?}"
    );

    let good = lint_fixture(
        "sa-heatmap-good",
        "crates/heatmap/src/fixture_heatmap.rs",
        "stats_accounting/heatmap_good.rs",
    );
    assert!(good.diagnostics.is_empty(), "{good:?}");

    // The same file placed in core is out of scope there: core's
    // contracts are about `pub fn solve…`/`pub fn try_solve…`.
    let cross = lint_fixture(
        "sa-heatmap-scope",
        "crates/core/src/fixture_heatmap.rs",
        "stats_accounting/heatmap_bad.rs",
    );
    assert!(
        !rule_ids(&cross).contains(&"stats-accounting"),
        "`pub fn try_heatmap…` in core is not a core entry point: {cross:?}"
    );
}

#[test]
fn stats_accounting_covers_serve_entry_points() {
    let bad = lint_fixture(
        "sa-serve-bad",
        "crates/serve/src/fixture_server.rs",
        "stats_accounting/serve_bad.rs",
    );
    assert!(
        rule_ids(&bad).contains(&"stats-accounting"),
        "a service entry point without ServeStats must trip: {bad:?}"
    );
    assert!(
        bad.diagnostics
            .iter()
            .any(|d| d.rule == "stats-accounting" && d.message.contains("ServeStats")),
        "the diagnostic must name the serve counter block: {bad:?}"
    );

    let good = lint_fixture(
        "sa-serve-good",
        "crates/serve/src/fixture_server.rs",
        "stats_accounting/serve_good.rs",
    );
    assert!(good.diagnostics.is_empty(), "{good:?}");

    // The core fixture placed in serve is out of scope there: serve's
    // contract is about `pub fn serve…`, not solver entry points.
    let cross = lint_fixture(
        "sa-serve-scope",
        "crates/serve/src/fixture_server.rs",
        "stats_accounting/bad.rs",
    );
    assert!(
        !rule_ids(&cross).contains(&"stats-accounting"),
        "`pub fn solve…` in serve is not a serve entry point: {cross:?}"
    );
}

#[test]
fn suppression_hygiene_bad_trips_good_passes() {
    let bad = lint_fixture(
        "sh-bad",
        "crates/core/src/fixture_mod.rs",
        "suppression_hygiene/bad.rs",
    );
    let hits = rule_ids(&bad);
    assert_eq!(
        hits.iter().filter(|r| **r == "suppression-hygiene").count(),
        2,
        "the unjustified allow and the unknown rule must both trip: {bad:?}"
    );
    assert!(
        hits.contains(&"panic-path"),
        "an unjustified allow must not silence the finding: {bad:?}"
    );

    let good = lint_fixture(
        "sh-good",
        "crates/core/src/fixture_mod.rs",
        "suppression_hygiene/good.rs",
    );
    assert!(
        good.diagnostics.is_empty(),
        "a justified allow silences the finding and passes the audit: {good:?}"
    );
}

#[test]
fn every_diagnostic_is_deny_severity_by_default() {
    let bad = lint_fixture("sev", "crates/core/src/fixture_mod.rs", "panic_path/bad.rs");
    assert!(bad.diagnostics.iter().all(|d| d.severity == Severity::Deny));
    assert_eq!(bad.deny_count(), bad.diagnostics.len());
}

#[test]
fn json_report_round_trips_through_serde_json() {
    let root = scratch(
        "json",
        &[(
            "crates/core/src/fixture_mod.rs",
            fixture("panic_path/bad.rs"),
        )],
    );
    let report = lint(&LintConfig::all(&root));
    let _ = fs::remove_dir_all(&root);

    let value = report.to_json();
    let text = serde_json::to_string_pretty(&value).expect("serialise report");
    let parsed = serde_json::from_str(&text).expect("parse report back");
    assert_eq!(value, parsed, "JSON output must round-trip losslessly");

    // The parsed structure is navigable with the documented shape.
    let diags = parsed
        .get("diagnostics")
        .and_then(|v| v.as_array())
        .expect("diagnostics array");
    assert_eq!(diags.len(), report.diagnostics.len());
    let first = diags.first().expect("non-empty");
    assert_eq!(
        first.get("rule").and_then(|v| v.as_str()),
        Some("panic-path")
    );
    assert_eq!(first.get("severity").and_then(|v| v.as_str()), Some("deny"));
    assert_eq!(
        first.get("line").and_then(|v| v.as_u64()),
        Some(report.diagnostics[0].line as u64)
    );
    assert_eq!(
        parsed.get("deny_count").and_then(|v| v.as_u64()),
        Some(report.deny_count() as u64)
    );
}

#[test]
fn the_live_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root");
    let report = lint(&LintConfig::all(root));
    assert!(
        !report.has_denials(),
        "the live workspace must lint clean:\n{}",
        report.render_text()
    );
}

// ---- function-span rules (PR 7) --------------------------------------

#[test]
fn lock_ordering_bad_trips_good_passes() {
    let bad = lint_fixture(
        "lo-bad",
        "crates/serve/src/fixture_mod.rs",
        "lock_ordering/bad.rs",
    );
    let cycles = bad
        .diagnostics
        .iter()
        .filter(|d| d.rule == "lock-ordering" && d.message.contains("cycle"))
        .count();
    let self_deadlocks = bad
        .diagnostics
        .iter()
        .filter(|d| d.rule == "lock-ordering" && d.message.contains("re-acquired"))
        .count();
    assert_eq!(
        cycles, 2,
        "both sides of the inversion are reported: {bad:?}"
    );
    assert_eq!(
        self_deadlocks, 1,
        "the double acquisition is reported: {bad:?}"
    );

    let good = lint_fixture(
        "lo-good",
        "crates/serve/src/fixture_mod.rs",
        "lock_ordering/good.rs",
    );
    assert!(
        good.diagnostics.is_empty(),
        "scoped guards acquired in one global order pass: {good:?}"
    );
}

#[test]
fn condvar_discipline_bad_trips_good_passes() {
    let bad = lint_fixture(
        "cd-bad",
        "crates/serve/src/fixture_mod.rs",
        "condvar_discipline/bad.rs",
    );
    assert!(
        bad.diagnostics
            .iter()
            .any(|d| d.rule == "condvar-discipline" && d.message.contains("outside a predicate")),
        "the wait under `if` must trip the loop half: {bad:?}"
    );
    assert!(
        bad.diagnostics
            .iter()
            .any(|d| d.rule == "condvar-discipline" && d.message.contains("discarded")),
        "the dropped guard must trip the consumption half: {bad:?}"
    );

    let good = lint_fixture(
        "cd-good",
        "crates/serve/src/fixture_mod.rs",
        "condvar_discipline/good.rs",
    );
    assert!(
        good.diagnostics.is_empty(),
        "the canonical rebinding while-loop passes: {good:?}"
    );
}

#[test]
fn bounded_io_bad_trips_good_passes() {
    let bad = lint_fixture(
        "bio-bad",
        "crates/serve/src/fixture_io.rs",
        "bounded_io/bad.rs",
    );
    let hits = rule_ids(&bad);
    assert_eq!(
        hits.iter().filter(|r| **r == "bounded-io").count(),
        3,
        "read_to_end, read_line and the uncapped growth loop must all trip: {bad:?}"
    );

    let good = lint_fixture(
        "bio-good",
        "crates/serve/src/fixture_io.rs",
        "bounded_io/good.rs",
    );
    assert!(
        good.diagnostics.is_empty(),
        "the read_bounded_* helper and the capped loop pass: {good:?}"
    );
}

#[test]
fn bounded_io_is_scoped_to_network_facing_crates() {
    // The same unbounded reads in a non-network crate are fine: the rule
    // polices attacker-reachable inputs, not build scripts or loaders.
    let report = lint_fixture(
        "bio-scope",
        "crates/data/src/fixture_io.rs",
        "bounded_io/bad.rs",
    );
    assert!(
        !rule_ids(&report).contains(&"bounded-io"),
        "data is outside the bounded-io scope: {report:?}"
    );
}

#[test]
fn hot_path_alloc_bad_trips_good_passes() {
    let bad = lint_fixture(
        "hpa-bad",
        "crates/prob/src/fixture_mod.rs",
        "hot_path_alloc/bad.rs",
    );
    assert!(
        bad.diagnostics
            .iter()
            .any(|d| d.rule == "hot-path-alloc" && d.message.contains("in hot function")),
        "the direct allocation must trip: {bad:?}"
    );
    assert!(
        bad.diagnostics
            .iter()
            .any(|d| d.rule == "hot-path-alloc" && d.message.contains("calls `helper_alloc`")),
        "the allocating direct callee must trip one level deep: {bad:?}"
    );

    let good = lint_fixture(
        "hpa-good",
        "crates/prob/src/fixture_mod.rs",
        "hot_path_alloc/good.rs",
    );
    assert!(
        good.diagnostics.is_empty(),
        "caller-provided scratch in the hot fn and allocation in cold fns pass: {good:?}"
    );
}

#[test]
fn cast_truncation_bad_trips_good_passes() {
    let bad = lint_fixture(
        "ct-bad",
        "crates/data/src/fixture_mod.rs",
        "cast_truncation/bad.rs",
    );
    let hits = rule_ids(&bad);
    assert_eq!(
        hits.iter().filter(|r| **r == "cast-truncation").count(),
        2,
        "the narrowing and the rounded wide cast must both trip: {bad:?}"
    );

    let good = lint_fixture(
        "ct-good",
        "crates/data/src/fixture_mod.rs",
        "cast_truncation/good.rs",
    );
    assert!(
        good.diagnostics.is_empty(),
        "try_from and clamp-in-the-float-domain pass: {good:?}"
    );
}

#[test]
fn span_rule_reports_round_trip_through_json() {
    // One scratch workspace holding a finding from every new rule.
    let root = scratch(
        "span-json",
        &[
            (
                "crates/serve/src/fixture_locks.rs",
                fixture("lock_ordering/bad.rs"),
            ),
            (
                "crates/serve/src/fixture_io.rs",
                fixture("bounded_io/bad.rs"),
            ),
            (
                "crates/data/src/fixture_casts.rs",
                fixture("cast_truncation/bad.rs"),
            ),
        ],
    );
    let report = lint(&LintConfig::all(&root));
    let _ = fs::remove_dir_all(&root);

    let value = report.to_json();
    let text = serde_json::to_string_pretty(&value).expect("serialise report");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("parse report back");
    assert_eq!(value, parsed, "JSON output must round-trip losslessly");

    let diags = parsed
        .get("diagnostics")
        .and_then(|v| v.as_array())
        .expect("diagnostics array");
    for rule in ["lock-ordering", "bounded-io", "cast-truncation"] {
        assert!(
            diags
                .iter()
                .any(|d| d.get("rule").and_then(|v| v.as_str()) == Some(rule)),
            "JSON report must carry a {rule} finding"
        );
    }
}

#[test]
fn live_workspace_suppressions_are_justified_and_known() {
    // Belt-and-braces over suppression-hygiene: walk every allow in the
    // live tree and assert it names a registered rule and carries a
    // justification. A new rule id typo'd in a suppression fails here
    // even if the hygiene rule itself regresses.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels below the workspace root");
    let mut audited = 0usize;
    for rel in xtask::collect_files(root) {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let text = fs::read_to_string(root.join(&rel)).expect("read workspace file");
        let file = xtask::SourceFile::parse(&rel_str, &text);
        for (idx, line) in file.lines.iter().enumerate() {
            if line.doc_comment {
                continue; // doc comments describe the syntax; they never enact
            }
            let Some(pos) = line.comment.find("pinocchio-lint: allow(") else {
                continue;
            };
            let rest = &line.comment[pos + "pinocchio-lint: allow(".len()..];
            let Some(close) = rest.find(')') else {
                panic!("{rel_str}:{}: malformed allow", idx + 1);
            };
            let rule = &rest[..close];
            assert!(
                xtask::is_known_rule(rule),
                "{rel_str}:{}: suppression names unknown rule `{rule}`",
                idx + 1
            );
            let justification = rest[close + 1..]
                .split_once("--")
                .map(|(_, j)| j.trim())
                .unwrap_or("");
            assert!(
                !justification.is_empty(),
                "{rel_str}:{}: suppression of `{rule}` lacks a justification",
                idx + 1
            );
            audited += 1;
        }
    }
    assert!(
        audited >= 10,
        "the live tree documents its suppressions (found only {audited})"
    );
}
