//! Spatial indexes for the PINOCCHIO framework.
//!
//! The paper indexes the candidate locations with an R-tree (Guttman,
//! SIGMOD 1984) whose leaves carry the per-candidate influence counters
//! (§4.3, "an R-tree is created to manage candidate locations"), with at
//! most 8 elements per node (§6.1). This crate provides:
//!
//! * [`RTree`] — a from-scratch point R-tree with Guttman insertion,
//!   quadratic node splitting, STR bulk loading, rectangle / circle /
//!   generic-region range queries, and best-first (k-)nearest-neighbour
//!   search (needed by the BRNN* baseline),
//! * [`GridIndex`] — a uniform grid used by the `ablation_index`
//!   benchmark to quantify the R-tree's contribution,
//! * [`MbrTree`] — a μ-aggregate R-tree over *object* MBRs (INSQ-style
//!   per-node summaries) powering the candidate-centric join solver's
//!   hierarchical IA/NIB pruning,
//! * query [`stats`] counters so experiments can report how many nodes a
//!   query touched.
//!
//! Both indexes store `(Point, T)` pairs; `T` is typically a candidate
//! identifier.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod grid;
pub mod mbr_tree;
pub mod rtree;
pub mod stats;

pub use grid::GridIndex;
pub use mbr_tree::{CellEntry, CellJoin, CellScratch, JoinEvent, JoinTraversal, MbrTree};
pub use rtree::{RTree, DEFAULT_MAX_ENTRIES};
pub use stats::QueryStats;
