//! Fixture: every ordering carries a happens-before argument.

use std::sync::atomic::{AtomicU32, Ordering};

/// Publishes with a happens-before argument.
pub fn publish(x: &AtomicU32) {
    // ordering: Release pairs with the Acquire load in `observe`.
    x.store(1, Ordering::Release);
}

/// Observes the published value.
pub fn observe(x: &AtomicU32) -> u32 {
    x.load(Ordering::Acquire) // ordering: pairs with `publish`'s Release store
}
