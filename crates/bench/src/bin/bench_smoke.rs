//! Bench smoke — a small release-mode benchmark of the validation hot
//! path, comparing the scalar kernel against the arena/block kernel on
//! the Fig. 8 / Fig. 9 default workloads.
//!
//! Emits `BENCH_PR3.json` at the workspace root (checked in, so the PR
//! carries its own evidence) with one row per (dataset, solver):
//!
//! * `naive`       — NA under the scalar kernel,
//! * `arena_naive` — NA over the position arena with the block-bounded
//!   kernel (the full-scan validation workload, where block bounds pay
//!   the most — this is the headline scalar-vs-arena comparison),
//! * `vo_seq`   — sequential PINOCCHIO-VO, scalar kernel,
//! * `vo_par`   — parallel PINOCCHIO-VO (4 workers), scalar kernel,
//! * `arena_vo` — sequential PINOCCHIO-VO over the position arena with
//!   the block-bounded kernel,
//! * `arena_vo_par` — the parallel driver on the block kernel.
//!
//! Intended to run at `PINOCCHIO_SCALE=small` in CI (the `bench-smoke`
//! job); at full scale it is the same sweep, just slower. Each solver is
//! warmed once and timed over three runs, keeping the best, so the
//! numbers are stable enough for a smoke-level "arena beats scalar"
//! assertion without Criterion's run time.

use pinocchio_bench::*;
use pinocchio_core::{parallel, Algorithm, EvalKernel, PrimeLs, SolveStats};
use pinocchio_data::{sample_candidate_group, Dataset};
use pinocchio_prob::PowerLawPf;
use std::path::PathBuf;
use std::time::Instant;

/// Parallel worker count for the `*_par` rows.
const PAR_THREADS: usize = 4;
/// Timed repetitions per row (best-of is recorded).
const REPS: usize = 3;

fn build(d: &Dataset, kernel: EvalKernel) -> PrimeLs<PowerLawPf> {
    let m = defaults::CANDIDATES.min(d.venues().len());
    let (_, candidates) = sample_candidate_group(d, m, 8);
    PrimeLs::builder()
        .objects(d.objects().to_vec())
        .candidates(candidates)
        .probability_function(PowerLawPf::paper_default())
        .tau(defaults::TAU)
        .evaluation_kernel(kernel)
        .build()
        .expect("benchmark problems are well-formed")
}

/// Best-of-`REPS` wall time plus the stats of the final run.
fn best_of<F: FnMut() -> (usize, u32, SolveStats)>(mut run: F) -> (f64, usize, u32, SolveStats) {
    let _ = run(); // warm-up: faults pages, fills the candidate-tree cache
    let mut best = f64::INFINITY;
    let mut last = (0usize, 0u32, SolveStats::default());
    for _ in 0..REPS {
        let t = Instant::now();
        last = run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, last.0, last.1, last.2)
}

fn row(
    rows: &mut Vec<serde_json::Value>,
    dataset: &str,
    solver: &str,
    (secs, best_candidate, max_influence, stats): (f64, usize, u32, SolveStats),
) {
    println!(
        "  {solver:<12} {:<10} best=#{best_candidate} inf={max_influence} \
         positions={} skipped_by_blocks={} blocks_pruned={}",
        fmt_secs(secs),
        stats.positions_evaluated,
        stats.positions_skipped_by_blocks,
        stats.blocks_pruned,
    );
    rows.push(serde_json::json!({
        "dataset": dataset,
        "solver": solver,
        "seconds": secs,
        "best_candidate": best_candidate,
        "max_influence": max_influence,
        "positions_evaluated": stats.positions_evaluated,
        "positions_skipped_by_blocks": stats.positions_skipped_by_blocks,
        "blocks_pruned": stats.blocks_pruned,
        "validated_pairs": stats.validated_pairs,
    }));
}

fn main() {
    let mut rows: Vec<serde_json::Value> = Vec::new();
    for kind in [DatasetKind::Foursquare, DatasetKind::Gowalla] {
        let d = dataset(kind);
        println!(
            "bench-smoke: dataset {} ({} objects)",
            kind.letter(),
            d.objects().len()
        );
        let scalar = build(&d, EvalKernel::Scalar);
        let blocked = build(&d, EvalKernel::Blocked);

        let solve = |p: &PrimeLs<PowerLawPf>, a: Algorithm| {
            let r = p.solve(a);
            (r.best_candidate, r.max_influence, r.stats)
        };
        row(
            &mut rows,
            kind.letter(),
            "naive",
            best_of(|| solve(&scalar, Algorithm::Naive)),
        );
        row(
            &mut rows,
            kind.letter(),
            "arena_naive",
            best_of(|| solve(&blocked, Algorithm::Naive)),
        );
        row(
            &mut rows,
            kind.letter(),
            "vo_seq",
            best_of(|| solve(&scalar, Algorithm::PinocchioVo)),
        );
        row(
            &mut rows,
            kind.letter(),
            "vo_par",
            best_of(|| {
                let r = parallel::solve_vo(&scalar, PAR_THREADS);
                (r.best_candidate, r.max_influence, r.stats)
            }),
        );
        row(
            &mut rows,
            kind.letter(),
            "arena_vo",
            best_of(|| solve(&blocked, Algorithm::PinocchioVo)),
        );
        row(
            &mut rows,
            kind.letter(),
            "arena_vo_par",
            best_of(|| {
                let r = parallel::solve_vo(&blocked, PAR_THREADS);
                (r.best_candidate, r.max_influence, r.stats)
            }),
        );
    }

    let record = serde_json::json!({
        "id": "bench_smoke_pr3",
        "scale": if is_small_scale() { "small" } else { "full" },
        "tau": defaults::TAU,
        "candidates": defaults::CANDIDATES,
        "par_threads": PAR_THREADS,
        "reps": REPS,
        "rows": rows,
    });
    write_record("bench_smoke_pr3", &record);

    // Also drop the record at the workspace root so the PR carries the
    // measured numbers alongside the code (BENCH_PR3.json is checked in).
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR3.json");
    let body = serde_json::to_string_pretty(&record).expect("serialisable record");
    std::fs::write(&root, body + "\n").expect("can write BENCH_PR3.json");
    println!("[record written to {}]", root.display());
}
