//! The quadtree descent engine behind [`try_heatmap`] and
//! [`try_top_region`].
//!
//! Cells are addressed in integer tile coordinates `(tx, ty, span)`
//! with `span` a power of two: the cell covers tiles
//! `[tx, tx + span) × [ty, ty + span)`. Cell rectangle edges are
//! always computed from the same integer formula
//! `frame.lo + frame.extent · t / resolution`, so a parent's boundary
//! bit-matches its children's and the union of terminal cells tiles
//! the frame exactly.
//!
//! [`try_heatmap`]: crate::try_heatmap
//! [`try_top_region`]: crate::try_top_region

use crate::Tile;
use pinocchio_core::{PrimeLs, SolveStats};
use pinocchio_geo::{Mbr, Point};
use pinocchio_index::{CellEntry, CellScratch, JoinTraversal, MbrTree};
use pinocchio_prob::ProbabilityFunction;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Cells at depth `<=` this run a fresh [`MbrTree::cell_join`] (full
/// tree walk with subtree-level bulk verdicts); deeper cells refine
/// their parent's ambiguous frontier entry-by-entry. Shallow cells are
/// few and huge, so re-walking the tree there buys whole-subtree NIB
/// eliminations that per-entry refinement cannot express; past depth 2
/// the frontier is already local and refinement is cheaper than a
/// walk.
const FRESH_JOIN_DEPTH: u32 = 2;

/// Uniform `resolution × resolution` tile geometry over `frame`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Grid {
    /// The rasterised window.
    pub frame: Mbr,
    /// Tiles per axis (power of two).
    pub res: u32,
}

impl Grid {
    pub(crate) fn new(frame: Mbr, res: u32) -> Self {
        Grid { frame, res }
    }

    #[inline]
    fn gx(&self, t: u32) -> f64 {
        self.frame.lo().x + self.frame.width() * f64::from(t) / f64::from(self.res)
    }

    #[inline]
    fn gy(&self, t: u32) -> f64 {
        self.frame.lo().y + self.frame.height() * f64::from(t) / f64::from(self.res)
    }

    /// The rectangle of the cell spanning tiles
    /// `[tx, tx + span) × [ty, ty + span)`.
    #[inline]
    pub(crate) fn rect(&self, tx: u32, ty: u32, span: u32) -> Mbr {
        Mbr::new(
            Point::new(self.gx(tx), self.gy(ty)),
            Point::new(self.gx(tx + span), self.gy(ty + span)),
        )
    }

    /// The centre of tile `(tx, ty)` — the refinement sample point.
    #[inline]
    pub(crate) fn center(&self, tx: u32, ty: u32) -> Point {
        self.rect(tx, ty, 1).center()
    }

    #[inline]
    fn index(&self, tx: u32, ty: u32) -> u32 {
        ty * self.res + tx
    }

    #[inline]
    fn center_of_index(&self, index: u32) -> Point {
        self.center(index % self.res, index / self.res)
    }
}

fn add_traversal(stats: &mut SolveStats, t: JoinTraversal) {
    stats.join_nodes_visited += t.nodes_visited;
    stats.subtrees_pruned_ia += t.subtrees_ia;
    stats.subtrees_pruned_nib += t.subtrees_nib;
}

/// Computes the full tile grid. Returns row-major tiles plus stats.
pub(crate) fn run_heatmap<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    grid: Grid,
) -> (Vec<Tile>, SolveStats) {
    let tree = problem.object_tree();
    let n_tiles = grid.res as usize * grid.res as usize;
    let mut tiles = vec![Tile::default(); n_tiles];
    let mut stats = SolveStats {
        uninfluenceable_objects: (problem.objects().len() - tree.len()) as u64,
        ..SolveStats::default()
    };

    let mut scratch = CellScratch::default();
    let mut root_frontier: Vec<CellEntry> = Vec::new();
    let root_rect = grid.rect(0, 0, grid.res);
    let join = tree.cell_join(&root_rect, &mut root_frontier, &mut scratch);
    add_traversal(&mut stats, join.traversal);

    // One reusable frontier buffer per quadtree level below the root.
    let depth_cap = grid.res.trailing_zeros() as usize;
    let mut bufs: Vec<Vec<CellEntry>> = (0..depth_cap).map(|_| Vec::new()).collect();
    let mut pending: Vec<(usize, u32)> = Vec::new();
    descend(
        tree,
        &grid,
        &mut scratch,
        CellAddr {
            tx: 0,
            ty: 0,
            span: grid.res,
            depth: 0,
        },
        join.all,
        &root_frontier,
        &mut bufs,
        &mut tiles,
        &mut pending,
        &mut stats,
    );
    refine_samples(problem, &grid, &mut tiles, &mut pending, &mut stats);
    (tiles, stats)
}

/// A cell's integer address in the quadtree.
#[derive(Debug, Clone, Copy)]
struct CellAddr {
    tx: u32,
    ty: u32,
    span: u32,
    depth: u32,
}

/// The recursive descent: resolve, refine-and-record, or split.
///
/// `all` is the number of objects already proven influenced from
/// every point of this cell; `frontier` holds the still-ambiguous
/// leaf entries. `bufs` provides one scratch frontier per level below
/// `addr.depth`, so the whole descent allocates nothing after its
/// buffers warm up.
// pinocchio-hot: quadtree descent — per-cell verdicts, no position touched
#[allow(clippy::too_many_arguments)]
fn descend(
    tree: &MbrTree<usize>,
    grid: &Grid,
    scratch: &mut CellScratch,
    addr: CellAddr,
    all: u64,
    frontier: &[CellEntry],
    bufs: &mut [Vec<CellEntry>],
    tiles: &mut [Tile],
    pending: &mut Vec<(usize, u32)>,
    stats: &mut SolveStats,
) {
    if frontier.is_empty() {
        // Resolved: `all` is exact at every point of the cell.
        // pinocchio-lint: allow(cast-truncation) -- `all` counts in-memory influenceable objects, which fits u32
        let v = all as u32;
        let t = Tile {
            lo: v,
            hi: v,
            sample: v,
        };
        for ty in addr.ty..addr.ty + addr.span {
            let row = grid.index(addr.tx, ty) as usize;
            for slot in &mut tiles[row..row + addr.span as usize] {
                *slot = t;
            }
        }
        if all > 0 {
            stats.cells_resolved_ia += 1;
        } else {
            stats.cells_resolved_nib += 1;
        }
        return;
    }
    if addr.span == 1 {
        // Ambiguous single tile: band from the verdicts, exact centre
        // sample owed by the refinement pass.
        let idx = grid.index(addr.tx, addr.ty);
        // pinocchio-lint: allow(cast-truncation) -- object counts fit u32
        let lo = all as u32;
        tiles[idx as usize] = Tile {
            lo,
            // pinocchio-lint: allow(cast-truncation) -- the frontier holds at most one entry per in-memory object
            hi: lo + frontier.len() as u32,
            sample: lo,
        };
        for &ce in frontier {
            pending.push((*tree.cell_entry_payload(ce), idx));
        }
        stats.cells_refined += 1;
        return;
    }
    let half = addr.span / 2;
    let Some((child_buf, rest)) = bufs.split_first_mut() else {
        return; // unreachable: bufs is sized to the tree depth
    };
    for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
        let child = CellAddr {
            tx: addr.tx + dx * half,
            ty: addr.ty + dy * half,
            span: half,
            depth: addr.depth + 1,
        };
        let rect = grid.rect(child.tx, child.ty, half);
        child_buf.clear();
        let child_all = if child.depth <= FRESH_JOIN_DEPTH {
            let j = tree.cell_join(&rect, child_buf, scratch);
            add_traversal(stats, j.traversal);
            j.all
        } else {
            all + tree.cell_join_refine(&rect, frontier, child_buf).all
        };
        descend(
            tree, grid, scratch, child, child_all, child_buf, rest, tiles, pending, stats,
        );
    }
}

/// Settles the exact centre count of every ambiguous tile.
///
/// `pending` holds the `(object, tile)` pairs the descent could not
/// decide. Inverting to object-major order lets each object's tiles go
/// through [`PairEval::influences_tile`] in kernel-width chunks, so the
/// log-domain kernel validates up to 32 tile centres per pass.
fn refine_samples<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    grid: &Grid,
    tiles: &mut [Tile],
    pending: &mut [(usize, u32)],
    stats: &mut SolveStats,
) {
    pending.sort_unstable();
    let mut eval = problem.pair_eval();
    let width = eval.tile_width().max(1);
    let mut centers: Vec<Point> = Vec::with_capacity(width);
    let mut i = 0;
    while i < pending.len() {
        let object = pending[i].0;
        let mut j = i;
        while j < pending.len() && pending[j].0 == object {
            j += 1;
        }
        for chunk in pending[i..j].chunks(width) {
            centers.clear();
            centers.extend(chunk.iter().map(|&(_, t)| grid.center_of_index(t)));
            let mask = eval.influences_tile(&centers, object, true, stats);
            for (bit, &(_, t)) in chunk.iter().enumerate() {
                if mask >> bit & 1 == 1 {
                    tiles[t as usize].sample += 1;
                }
            }
        }
        i = j;
    }
}

/// An open (still-ambiguous) cell in the branch-and-bound frontier.
///
/// Ordered so the [`BinaryHeap`] pops the cell with the largest upper
/// bound first, ties broken towards the smallest first tile index —
/// the same direction as the result ordering.
#[derive(Debug)]
struct Open {
    hi: u64,
    first_index: u64,
    all: u64,
    addr: CellAddr,
    frontier: Vec<CellEntry>,
}

impl PartialEq for Open {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Open {}
impl PartialOrd for Open {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Open {
    fn cmp(&self, other: &Self) -> Ordering {
        self.hi
            .cmp(&other.hi)
            .then_with(|| other.first_index.cmp(&self.first_index))
    }
}

/// The bounded selection of exact tiles seen so far: at most `k`
/// entries, kept sorted by `(influence desc, index asc)`.
struct Pool {
    k: usize,
    best: Vec<(u32, u32)>, // (influence, tile index)
}

impl Pool {
    fn new(k: usize) -> Self {
        Pool {
            k,
            best: Vec::new(),
        }
    }

    /// The current `k`-th best influence, once `k` tiles are known.
    fn threshold(&self) -> Option<u32> {
        if self.best.len() == self.k {
            Some(self.best[self.k - 1].0)
        } else {
            None
        }
    }

    fn offer(&mut self, influence: u32, index: u32) {
        self.best.push((influence, index));
        self.best
            .sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        self.best.truncate(self.k);
    }

    /// Offers a resolved cell: every tile of the `span × span` block
    /// has exact influence `v`. Only the block's `k` smallest row-major
    /// indices can matter (any further tile is dominated by `k`
    /// equal-influence, smaller-index tiles from the same block).
    fn offer_block(&mut self, grid: &Grid, v: u32, addr: CellAddr) {
        let mut left = self.k;
        'rows: for ty in addr.ty..addr.ty + addr.span {
            for tx in addr.tx..addr.tx + addr.span {
                if left == 0 {
                    break 'rows;
                }
                self.offer(v, grid.index(tx, ty));
                left -= 1;
            }
        }
    }
}

/// Branch-and-bound top-`k` tiles by exact centre influence.
pub(crate) fn run_top_region<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    grid: Grid,
    k: usize,
) -> (Vec<crate::RegionCell>, SolveStats) {
    let tree = problem.object_tree();
    let mut stats = SolveStats {
        uninfluenceable_objects: (problem.objects().len() - tree.len()) as u64,
        ..SolveStats::default()
    };
    let mut eval = problem.pair_eval();
    let mut scratch = CellScratch::default();
    let mut pool = Pool::new(k.min(grid.res as usize * grid.res as usize));

    let mut heap: BinaryHeap<Open> = BinaryHeap::new();
    let root = CellAddr {
        tx: 0,
        ty: 0,
        span: grid.res,
        depth: 0,
    };
    let mut root_frontier = Vec::new();
    let join = tree.cell_join(&grid.rect(0, 0, grid.res), &mut root_frontier, &mut scratch);
    add_traversal(&mut stats, join.traversal);
    if root_frontier.is_empty() {
        // pinocchio-lint: allow(cast-truncation) -- object counts fit u32
        let v = join.all as u32;
        if join.all > 0 {
            stats.cells_resolved_ia += 1;
        } else {
            stats.cells_resolved_nib += 1;
        }
        pool.offer_block(&grid, v, root);
    } else {
        heap.push(Open {
            hi: join.all + root_frontier.len() as u64,
            first_index: 0,
            all: join.all,
            addr: root,
            frontier: root_frontier,
        });
    }

    while let Some(top) = heap.pop() {
        if let Some(t) = pool.threshold() {
            // Strictly below the k-th best: nothing under this cell
            // (or any other open cell — the heap is hi-ordered) can
            // enter the answer. Ties must still be expanded: an
            // equal-influence tile with a smaller index wins.
            if top.hi < u64::from(t) {
                break;
            }
        }
        if top.addr.span == 1 {
            let idx = grid.index(top.addr.tx, top.addr.ty);
            let center = grid.center_of_index(idx);
            // pinocchio-lint: allow(cast-truncation) -- object counts fit u32
            let mut v = top.all as u32;
            for &ce in &top.frontier {
                if eval.influences(&center, *tree.cell_entry_payload(ce), true, &mut stats) {
                    v += 1;
                }
            }
            stats.cells_refined += 1;
            pool.offer(v, idx);
            continue;
        }
        let half = top.addr.span / 2;
        for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
            let child = CellAddr {
                tx: top.addr.tx + dx * half,
                ty: top.addr.ty + dy * half,
                span: half,
                depth: top.addr.depth + 1,
            };
            let rect = grid.rect(child.tx, child.ty, half);
            let mut frontier = Vec::new();
            let child_all = if child.depth <= FRESH_JOIN_DEPTH {
                let j = tree.cell_join(&rect, &mut frontier, &mut scratch);
                add_traversal(&mut stats, j.traversal);
                j.all
            } else {
                top.all
                    + tree
                        .cell_join_refine(&rect, &top.frontier, &mut frontier)
                        .all
            };
            if frontier.is_empty() {
                if child_all > 0 {
                    stats.cells_resolved_ia += 1;
                } else {
                    stats.cells_resolved_nib += 1;
                }
                // pinocchio-lint: allow(cast-truncation) -- object counts fit u32
                pool.offer_block(&grid, child_all as u32, child);
            } else {
                heap.push(Open {
                    hi: child_all + frontier.len() as u64,
                    first_index: u64::from(grid.index(child.tx, child.ty)),
                    all: child_all,
                    addr: child,
                    frontier,
                });
            }
        }
    }

    let cells = pool
        .best
        .iter()
        .map(|&(influence, index)| crate::RegionCell {
            tile: index as usize,
            center: grid.center_of_index(index),
            influence,
        })
        .collect();
    (cells, stats)
}
