//! # PINOCCHIO — Probabilistic Influence-Based Location Selection over Moving Objects
//!
//! A from-scratch Rust implementation of the PRIME-LS problem and the
//! PINOCCHIO / PINOCCHIO-VO algorithms of Wang et al. (IEEE TKDE 2016 /
//! ICDE 2017), together with every substrate the paper depends on.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`geo`] — geometry kernel (points, MBRs, metrics, pruning regions),
//! * [`prob`] — distance-based influence probability functions,
//! * [`index`] — the R-tree and grid spatial indexes,
//! * [`data`] — moving-object datasets, generators and ground truth,
//! * [`core`] — the PRIME-LS solvers (NA, PINOCCHIO, PINOCCHIO-VO),
//! * [`baselines`] — the BRNN* and RANGE baselines from the evaluation,
//! * [`eval`] — Precision@K / AP@K metrics and experiment utilities,
//! * [`serve`] — the epoch-snapshot query service (streaming ingest,
//!   request batching, in-band metrics) over the incremental engine.
//!
//! ## Quickstart
//!
//! ```
//! use pinocchio::prelude::*;
//!
//! // A tiny synthetic world: 3 moving objects, 2 candidate locations.
//! let objects = vec![
//!     MovingObject::new(0, vec![Point::new(0.0, 0.0), Point::new(1.0, 0.5)]),
//!     MovingObject::new(1, vec![Point::new(0.2, 0.1)]),
//!     MovingObject::new(2, vec![Point::new(9.0, 9.0), Point::new(8.5, 9.5)]),
//! ];
//! let candidates = vec![Point::new(0.5, 0.2), Point::new(9.0, 9.2)];
//!
//! let problem = PrimeLs::builder()
//!     .objects(objects)
//!     .candidates(candidates)
//!     .probability_function(PowerLawPf::paper_default())
//!     .tau(0.7)
//!     .build()
//!     .expect("valid problem");
//!
//! let result = problem.solve(Algorithm::PinocchioVo);
//! println!("best candidate: {} influencing {} objects",
//!          result.best_candidate, result.max_influence);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use pinocchio_baselines as baselines;
pub use pinocchio_core as core;
pub use pinocchio_data as data;
pub use pinocchio_eval as eval;
pub use pinocchio_geo as geo;
pub use pinocchio_index as index;
pub use pinocchio_prob as prob;
pub use pinocchio_serve as serve;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use pinocchio_core::{Algorithm, EvalKernel, PrimeLs, PrimeLsBuilder, SolveResult};
    pub use pinocchio_data::{Dataset, MovingObject};
    pub use pinocchio_geo::{Mbr, Point};
    pub use pinocchio_prob::{CumulativeProbability, PowerLawPf, ProbabilityFunction};
}
