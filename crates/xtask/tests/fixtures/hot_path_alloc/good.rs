//! Hot-path-alloc fixture: the sanctioned shape — the kernel writes
//! into caller-provided scratch (amortised `push` is allowed; fresh
//! allocation is not).

// pinocchio-hot: fixture kernel with caller-provided scratch
pub fn hot_sum_into(xs: &[f64], scratch: &mut Vec<f64>) -> f64 {
    scratch.clear();
    for x in xs {
        scratch.push(x * 2.0);
    }
    scratch.iter().sum()
}

pub fn cold_setup(xs: &[f64]) -> Vec<f64> {
    let mut scratch = Vec::with_capacity(xs.len());
    scratch.extend(xs.iter().copied());
    scratch
}
