//! Plain CSV persistence for datasets.
//!
//! Real check-in datasets (the paper uses the collections published with
//! Yuan et al., SIGIR 2013) can be converted to two small CSV files and
//! loaded here, so the entire benchmark suite runs unchanged on real
//! data when it is available:
//!
//! * `checkins.csv` — `user_id,x_km,y_km` one row per check-in
//!   (coordinates already projected; see `pinocchio_geo::projection`),
//! * `venues.csv` — `x_km,y_km,checkins,distinct_visitors`.

use crate::dataset::{Dataset, Venue};
use crate::object::MovingObject;
use pinocchio_geo::{EquirectangularProjection, Point};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors raised by the CSV loader.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A malformed CSV row: `(line_number, description)`.
    Parse(usize, String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes the dataset's check-ins to `path` as `user_id,x,y` rows.
pub fn save_checkins(dataset: &Dataset, path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    for o in dataset.objects() {
        for p in o.positions() {
            writeln!(w, "{},{},{}", o.id(), p.x, p.y)?;
        }
    }
    Ok(())
}

/// Writes the dataset's venues to `path` as
/// `x,y,checkins,distinct_visitors` rows.
pub fn save_venues(dataset: &Dataset, path: &Path) -> Result<(), IoError> {
    let mut w = BufWriter::new(File::create(path)?);
    for v in dataset.venues() {
        writeln!(
            w,
            "{},{},{},{}",
            v.position.x, v.position.y, v.checkins, v.distinct_visitors
        )?;
    }
    Ok(())
}

/// Loads a dataset from `checkins_path` (+ optional `venues_path`).
///
/// Check-in rows are grouped by user id (rows need not be sorted).
pub fn load_dataset(
    name: &str,
    checkins_path: &Path,
    venues_path: Option<&Path>,
) -> Result<Dataset, IoError> {
    let mut by_user: BTreeMap<u64, Vec<Point>> = BTreeMap::new();
    for (lineno, line) in BufReader::new(File::open(checkins_path)?)
        .lines()
        .enumerate()
    {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let parse = |field: Option<&str>, what: &str| -> Result<f64, IoError> {
            field
                .ok_or_else(|| IoError::Parse(lineno + 1, format!("missing {what}")))?
                .trim()
                .parse::<f64>()
                .map_err(|e| IoError::Parse(lineno + 1, format!("bad {what}: {e}")))
        };
        let uid = parts
            .next()
            .ok_or_else(|| IoError::Parse(lineno + 1, "missing user id".into()))?
            .trim()
            .parse::<u64>()
            .map_err(|e| IoError::Parse(lineno + 1, format!("bad user id: {e}")))?;
        let x = parse(parts.next(), "x")?;
        let y = parse(parts.next(), "y")?;
        if !x.is_finite() || !y.is_finite() {
            return Err(IoError::Parse(lineno + 1, "non-finite coordinate".into()));
        }
        by_user.entry(uid).or_default().push(Point::new(x, y));
    }
    if by_user.is_empty() {
        return Err(IoError::Parse(0, "no check-ins found".into()));
    }
    let objects: Vec<MovingObject> = by_user
        .into_iter()
        .map(|(uid, positions)| MovingObject::new(uid, positions))
        .collect();

    let venues = match venues_path {
        None => Vec::new(),
        Some(vp) => {
            let mut venues = Vec::new();
            for (lineno, line) in BufReader::new(File::open(vp)?).lines().enumerate() {
                let line = line?;
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let fields: Vec<&str> = line.split(',').map(str::trim).collect();
                if fields.len() != 4 {
                    return Err(IoError::Parse(
                        lineno + 1,
                        format!("expected 4 fields, got {}", fields.len()),
                    ));
                }
                let fx = |i: usize, what: &str| -> Result<f64, IoError> {
                    fields[i]
                        .parse::<f64>()
                        .map_err(|e| IoError::Parse(lineno + 1, format!("bad {what}: {e}")))
                };
                let fu = |i: usize, what: &str| -> Result<u64, IoError> {
                    fields[i]
                        .parse::<u64>()
                        .map_err(|e| IoError::Parse(lineno + 1, format!("bad {what}: {e}")))
                };
                venues.push(Venue {
                    position: Point::new(fx(0, "x")?, fx(1, "y")?),
                    checkins: fu(2, "checkins")?,
                    distinct_visitors: fu(3, "distinct_visitors")?,
                });
            }
            venues
        }
    };
    Ok(Dataset::new(name, objects, venues))
}

/// Loads a dataset whose CSV coordinates are *geodetic*
/// (`user_id,longitude,latitude` rows, degrees) and projects every
/// position — and every venue, when given — into a local planar
/// kilometre frame anchored at the check-in centroid.
///
/// Returns the dataset together with the projection so results can be
/// mapped back to longitude/latitude.
pub fn load_geodetic_dataset(
    name: &str,
    checkins_path: &Path,
    venues_path: Option<&Path>,
) -> Result<(Dataset, EquirectangularProjection), IoError> {
    let raw = load_dataset(name, checkins_path, venues_path)?;
    let all_geo: Vec<Point> = raw
        .objects()
        .iter()
        .flat_map(|o| o.positions().iter().copied())
        .collect();
    let proj = EquirectangularProjection::centered_on(&all_geo)
        .expect("dataset is non-empty by construction");
    let objects: Vec<MovingObject> = raw
        .objects()
        .iter()
        .map(|o| {
            MovingObject::new(
                o.id(),
                o.positions().iter().map(|p| proj.forward(p)).collect(),
            )
        })
        .collect();
    let venues: Vec<Venue> = raw
        .venues()
        .iter()
        .map(|v| Venue {
            position: proj.forward(&v.position),
            checkins: v.checkins,
            distinct_visitors: v.distinct_visitors,
        })
        .collect();
    Ok((Dataset::new(name, objects, venues), proj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, SyntheticGenerator};

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pinocchio-io-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_preserves_dataset() {
        let d = SyntheticGenerator::new(GeneratorConfig::small(40, 13)).generate();
        let dir = tempdir();
        let cpath = dir.join("checkins.csv");
        let vpath = dir.join("venues.csv");
        save_checkins(&d, &cpath).unwrap();
        save_venues(&d, &vpath).unwrap();
        let d2 = load_dataset("reload", &cpath, Some(&vpath)).unwrap();

        assert_eq!(d2.objects().len(), d.objects().len());
        assert_eq!(d2.total_checkins(), d.total_checkins());
        assert_eq!(d2.venues().len(), d.venues().len());
        for (a, b) in d.venues().iter().zip(d2.venues()) {
            assert_eq!(a.checkins, b.checkins);
            assert_eq!(a.distinct_visitors, b.distinct_visitors);
            assert!((a.position.x - b.position.x).abs() < 1e-12);
        }
        // Per-object position multisets survive (objects keyed by id).
        for (a, b) in d.objects().iter().zip(d2.objects()) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.position_count(), b.position_count());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loader_rejects_garbage() {
        let dir = tempdir();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "1,2.0,not-a-number\n").unwrap();
        let err = load_dataset("bad", &path, None).unwrap_err();
        assert!(matches!(err, IoError::Parse(1, _)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loader_skips_comments_and_blank_lines() {
        let dir = tempdir();
        let path = dir.join("ok.csv");
        std::fs::write(&path, "# header\n\n1,0.5,0.5\n1,1.5,0.5\n2,3.0,3.0\n").unwrap();
        let d = load_dataset("ok", &path, None).unwrap();
        assert_eq!(d.objects().len(), 2);
        assert_eq!(d.total_checkins(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn geodetic_loader_projects_to_km_frame() {
        use pinocchio_geo::Haversine;
        let dir = tempdir();
        let path = dir.join("geo.csv");
        // Two users around Singapore (lon ~103.8, lat ~1.3).
        std::fs::write(
            &path,
            "1,103.80,1.30
1,103.82,1.31
2,103.95,1.35
2,103.96,1.36
",
        )
        .unwrap();
        let (d, proj) = load_geodetic_dataset("sg", &path, None).unwrap();
        assert_eq!(d.objects().len(), 2);
        // Distances in the projected frame match haversine within 0.1 %.
        let a = d.objects()[0].positions()[0];
        let b = d.objects()[1].positions()[0];
        let planar = a.euclidean(&b);
        let sphere = Haversine::distance_km(
            &pinocchio_geo::Point::new(103.80, 1.30),
            &pinocchio_geo::Point::new(103.95, 1.35),
        );
        assert!(
            (planar - sphere).abs() / sphere < 1e-3,
            "{planar} vs {sphere}"
        );
        // Round trip through the returned projection.
        let back = proj.inverse(&a);
        assert!((back.x - 103.80).abs() < 1e-9);
        assert!((back.y - 1.30).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_is_an_error() {
        let dir = tempdir();
        let path = dir.join("empty.csv");
        std::fs::write(&path, "").unwrap();
        assert!(load_dataset("empty", &path, None).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
