//! Fixture: a solver entry point wired into `SolveStats`.

use crate::result::SolveStats;

/// Solves and reports cost counters.
pub fn solve_fast() -> SolveStats {
    SolveStats::default()
}
