//! Influence heat maps: adaptive quadtree region queries over the frame.
//!
//! PINOCCHIO's point queries answer "how influential is *this*
//! candidate?". This crate answers the region-level question planners
//! actually start from: *where in the city is influence high at all?*
//! A heat map partitions the frame into a `resolution × resolution`
//! tile grid and reports, per tile, a sound band `[lo, hi]` on the
//! influence count `inf(p) = |{O : Pr_p(O) ≥ τ}|` that holds for
//! **every** point `p` of the tile, plus the exact count at the tile
//! centre.
//!
//! # How the descent works
//!
//! Evaluating `inf` densely is `O(resolution² · |O| · positions)`.
//! Instead we descend a quadtree over the frame and decide whole
//! (cell, object-subtree) pairs at once using the μ-banded aggregates
//! of [`MbrTree`]: rect-to-rect distance bounds against a subtree's
//! `mbr`/`nib_mbr` plus its `[min_mu, max_mu]` band give `O(1)`
//! ALL / NONE verdicts (the paper's Theorems 1–2 lifted from points to
//! cells; see `DESIGN.md` §17). Verdicts are monotone under cell
//! containment, so a cell whose frontier of undecided objects empties
//! resolves to an exact, constant influence count over its whole area
//! without ever touching a position sample — only ambiguous cells
//! split. Single-tile cells that stay ambiguous get their centre
//! refined exactly through the evaluation kernel
//! ([`PairEval::influences_tile`]), batched per object in
//! kernel-tile-width chunks.
//!
//! Two entry points:
//!
//! * [`try_heatmap`] — the full tile grid of influence bands,
//! * [`try_top_region`] — the `k` highest-influence tiles by exact
//!   centre count, found branch-and-bound without materialising the
//!   grid (pruned by per-cell upper bounds; exact, with deterministic
//!   `(count desc, tile index asc)` tie-breaking).
//!
//! Work is accounted in [`SolveStats`]: `cells_resolved_ia` /
//! `cells_resolved_nib` / `cells_refined` count terminal cells (for a
//! full heat map Σ span² over terminal cells = resolution²), the join
//! traversal counters cover tree walks, and every exact centre
//! evaluation is a `validated_pairs` increment.
//!
//! [`PairEval::influences_tile`]: pinocchio_core::PairEval::influences_tile

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod descent;

use pinocchio_core::{PrimeLs, SolveStats};
use pinocchio_geo::{Mbr, Point};
use pinocchio_prob::ProbabilityFunction;
use std::fmt;

pub(crate) use descent::Grid;

/// Largest accepted `resolution` (tiles per axis). `2048²` tiles is
/// ~50 MiB of [`Tile`]s — past that a heat map stops being a wire
/// answer and starts being a raster export.
pub const MAX_RESOLUTION: u32 = 2048;

/// One tile of a heat map.
///
/// `lo ≤ inf(p) ≤ hi` holds for **every** point `p` of the tile
/// (sound band from cell verdicts alone); `sample` is the **exact**
/// influence count at the tile centre, so `lo ≤ sample ≤ hi` always.
/// For tiles whose cell resolved during the descent the three values
/// coincide and the band is exact everywhere, not just at the centre.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tile {
    /// Lower bound on `inf(p)` over the whole tile.
    pub lo: u32,
    /// Upper bound on `inf(p)` over the whole tile.
    pub hi: u32,
    /// Exact influence count at the tile centre.
    pub sample: u32,
}

/// A full influence heat map: `resolution²` tiles in row-major order
/// (tile `(tx, ty)` at index `ty * resolution + tx`, `x` fastest).
#[derive(Debug, Clone)]
pub struct Heatmap {
    /// The queried frame; tiles partition it uniformly.
    pub frame: Mbr,
    /// Tiles per axis (power of two).
    pub resolution: u32,
    /// Row-major tile grid, `resolution²` entries.
    pub tiles: Vec<Tile>,
    /// Work accounting for the descent and its refinements.
    pub stats: SolveStats,
}

impl Heatmap {
    /// The tile at grid coordinates `(tx, ty)`.
    ///
    /// # Panics
    /// Panics if either coordinate is `>= resolution`.
    pub fn tile(&self, tx: u32, ty: u32) -> Tile {
        assert!(tx < self.resolution && ty < self.resolution);
        self.tiles[ty as usize * self.resolution as usize + tx as usize]
    }

    /// The rectangle covered by tile `(tx, ty)`.
    pub fn tile_rect(&self, tx: u32, ty: u32) -> Mbr {
        Grid::new(self.frame, self.resolution).rect(tx, ty, 1)
    }

    /// The centre point of the tile at row-major `index` — the point
    /// where [`Tile::sample`] was (or would be) evaluated.
    pub fn tile_center(&self, index: usize) -> Point {
        let res = self.resolution as usize;
        Grid::new(self.frame, self.resolution)
            // pinocchio-lint: allow(cast-truncation) -- both quotient and remainder are < resolution <= MAX_RESOLUTION, far inside u32
            .center((index % res) as u32, (index / res) as u32)
    }
}

/// One cell of a [`TopRegion`] answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionCell {
    /// Row-major tile index into the (virtual) heat-map grid.
    pub tile: usize,
    /// The tile's centre — the evaluated location.
    pub center: Point,
    /// Exact influence count at `center`.
    pub influence: u32,
}

/// The `k` highest-influence tiles of a (virtual) heat map, ordered by
/// `(influence desc, tile index asc)` — exactly the order an argmax
/// scan over [`try_heatmap`]'s `sample` values produces.
#[derive(Debug, Clone)]
pub struct TopRegion {
    /// The queried frame.
    pub frame: Mbr,
    /// Tiles per axis (power of two).
    pub resolution: u32,
    /// The winning tiles, best first. Shorter than `k` only when the
    /// grid has fewer than `k` tiles.
    pub cells: Vec<RegionCell>,
    /// Work accounting. Branch-and-bound stops early, so the
    /// tile-coverage identity of a full descent does not apply here.
    pub stats: SolveStats,
}

/// Why a heat-map query was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum HeatmapError {
    /// `resolution` must be a power of two in `1..=MAX_RESOLUTION`.
    Resolution(u32),
    /// `k` must be at least 1.
    ZeroK,
    /// No frame was given and the problem has no influenceable
    /// objects to derive one from.
    EmptyFrame,
}

impl fmt::Display for HeatmapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeatmapError::Resolution(r) => write!(
                f,
                "resolution {r} is not a power of two in 1..={MAX_RESOLUTION}"
            ),
            HeatmapError::ZeroK => write!(f, "k must be at least 1"),
            HeatmapError::EmptyFrame => write!(
                f,
                "no frame given and no influenceable objects to derive one from"
            ),
        }
    }
}

impl std::error::Error for HeatmapError {}

fn checked_grid<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    resolution: u32,
    frame: Option<Mbr>,
) -> Result<Grid, HeatmapError> {
    if resolution == 0 || !resolution.is_power_of_two() || resolution > MAX_RESOLUTION {
        return Err(HeatmapError::Resolution(resolution));
    }
    let frame = match frame {
        Some(f) => f,
        None => problem
            .object_tree()
            .bounds()
            .ok_or(HeatmapError::EmptyFrame)?,
    };
    Ok(Grid::new(frame, resolution))
}

/// Computes the full influence heat map of `problem` at `resolution`.
///
/// `frame` defaults to the bounding rectangle of the influenceable
/// objects; pass it explicitly to rasterise a fixed window (sharded
/// deployments pass the global frame so per-shard grids line up
/// tile-for-tile and merge elementwise).
///
/// # Errors
/// [`HeatmapError::Resolution`] unless `resolution` is a power of two
/// in `1..=MAX_RESOLUTION`; [`HeatmapError::EmptyFrame`] when no frame
/// is given and none can be derived.
pub fn try_heatmap<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    resolution: u32,
    frame: Option<Mbr>,
) -> Result<Heatmap, HeatmapError> {
    let grid = checked_grid(problem, resolution, frame)?;
    let (tiles, stats) = descent::run_heatmap(problem, grid);
    Ok(Heatmap {
        frame: grid.frame,
        resolution,
        tiles,
        stats,
    })
}

/// Infallible [`try_heatmap`] for known-good arguments.
///
/// # Panics
/// Panics where [`try_heatmap`] would return an error.
pub fn heatmap<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    resolution: u32,
    frame: Option<Mbr>,
) -> Heatmap {
    match try_heatmap(problem, resolution, frame) {
        Ok(h) => h,
        Err(e) => panic!("heatmap: {e}"),
    }
}

/// Finds the `k` tiles with the highest exact centre influence,
/// without materialising the full grid.
///
/// Branch-and-bound over the same quadtree as [`try_heatmap`]: a cell
/// whose upper bound falls strictly below the current `k`-th best
/// exact count can be discarded wholesale — cells tied with the
/// threshold are still expanded so the `(influence desc, tile index
/// asc)` order is honoured exactly. The result bit-matches a top-`k`
/// scan over [`try_heatmap`]'s `sample` values.
///
/// # Errors
/// [`HeatmapError::ZeroK`] when `k == 0`, plus everything
/// [`try_heatmap`] rejects.
pub fn try_top_region<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    k: usize,
    resolution: u32,
    frame: Option<Mbr>,
) -> Result<TopRegion, HeatmapError> {
    if k == 0 {
        return Err(HeatmapError::ZeroK);
    }
    let grid = checked_grid(problem, resolution, frame)?;
    let (cells, stats) = descent::run_top_region(problem, grid, k);
    Ok(TopRegion {
        frame: grid.frame,
        resolution,
        cells,
        stats,
    })
}

/// Infallible [`try_top_region`] for known-good arguments.
///
/// # Panics
/// Panics where [`try_top_region`] would return an error.
pub fn top_region<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    k: usize,
    resolution: u32,
    frame: Option<Mbr>,
) -> TopRegion {
    match try_top_region(problem, k, resolution, frame) {
        Ok(t) => t,
        Err(e) => panic!("top_region: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinocchio_prob::PowerLawPf;

    fn tiny() -> PrimeLs<PowerLawPf> {
        let objects = vec![
            pinocchio_data::MovingObject::new(0, vec![Point::new(2.0, 2.0), Point::new(2.5, 2.0)]),
            pinocchio_data::MovingObject::new(1, vec![Point::new(8.0, 8.0)]),
        ];
        PrimeLs::builder()
            .objects(objects)
            .candidates(vec![Point::new(5.0, 5.0)])
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .build()
            .expect("valid problem")
    }

    #[test]
    fn rejects_bad_resolution() {
        let p = tiny();
        for r in [0u32, 3, 6, MAX_RESOLUTION * 2] {
            assert_eq!(
                try_heatmap(&p, r, None).unwrap_err(),
                HeatmapError::Resolution(r)
            );
        }
        assert_eq!(
            try_top_region(&p, 0, 8, None).unwrap_err(),
            HeatmapError::ZeroK
        );
    }

    #[test]
    fn derives_frame_from_object_tree() {
        let p = tiny();
        let h = try_heatmap(&p, 4, None).expect("heatmap");
        assert_eq!(h.frame, p.object_tree().bounds().unwrap());
        assert_eq!(h.tiles.len(), 16);
    }

    #[test]
    fn explicit_frame_is_respected() {
        let p = tiny();
        let frame = Mbr::new(Point::new(0.0, 0.0), Point::new(16.0, 16.0));
        let h = try_heatmap(&p, 8, Some(frame)).expect("heatmap");
        assert_eq!(h.frame, frame);
        let r = h.tile_rect(0, 0);
        assert_eq!(r.lo(), Point::new(0.0, 0.0));
        assert_eq!(r.hi(), Point::new(2.0, 2.0));
        assert_eq!(h.tile_center(0), Point::new(1.0, 1.0));
        // Last tile's rect reaches the frame corner.
        let last = h.tile_rect(7, 7);
        assert_eq!(last.hi(), Point::new(16.0, 16.0));
    }

    #[test]
    fn bands_contain_samples_and_cells_account() {
        let p = tiny();
        let h = try_heatmap(
            &p,
            16,
            Some(Mbr::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0))),
        )
        .expect("heatmap");
        for t in &h.tiles {
            assert!(t.lo <= t.sample && t.sample <= t.hi);
        }
        let s = &h.stats;
        assert!(s.cells_resolved_ia + s.cells_resolved_nib + s.cells_refined > 0);
        // Exact bands come only from resolved cells, so every refined
        // (ambiguous) tile must have lo < hi.
        let ambiguous = h.tiles.iter().filter(|t| t.lo < t.hi).count() as u64;
        assert_eq!(ambiguous, s.cells_refined);
    }
}
