//! RANGE — the proportion-within-range semantics (§6.2).
//!
//! "We design a baseline RANGE with a simple definition of influence,
//! where an object is deemed to be influenced if at least some
//! proportion of its positions lie within a given range of a candidate."
//!
//! The paper sweeps proportions {25 %, 50 %, 75 %} and ranges
//! {½×, 1×, 2×} of the default range — 5 ‰ of the complete scale (0.2 km
//! for Foursquare) — and averages the results of the nine combinations.

use pinocchio_data::MovingObject;
use pinocchio_geo::Point;
use pinocchio_index::RTree;

/// One `(proportion, range)` parameter combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeConfig {
    /// Minimum fraction of positions that must lie in range, in `(0, 1]`.
    pub proportion: f64,
    /// Influence range in kilometres.
    pub range_km: f64,
}

impl RangeConfig {
    /// Validates the configuration.
    pub fn new(proportion: f64, range_km: f64) -> Self {
        assert!(
            proportion > 0.0 && proportion <= 1.0,
            "proportion must be in (0, 1], got {proportion}"
        );
        assert!(range_km > 0.0, "range must be positive, got {range_km}");
        RangeConfig {
            proportion,
            range_km,
        }
    }

    /// The paper's nine combinations for a dataset whose *complete
    /// scale* (longest frame side) is `scale_km`: proportions
    /// {0.25, 0.5, 0.75} × ranges {½, 1, 2} × (5 ‰ of scale).
    pub fn paper_combinations(scale_km: f64) -> Vec<RangeConfig> {
        assert!(scale_km > 0.0);
        let default_range = 0.005 * scale_km;
        let mut combos = Vec::with_capacity(9);
        for proportion in [0.25, 0.5, 0.75] {
            for factor in [0.5, 1.0, 2.0] {
                combos.push(RangeConfig::new(proportion, default_range * factor));
            }
        }
        combos
    }
}

/// Runs the RANGE baseline for one configuration. Returns per-candidate
/// influence counts (number of objects influenced).
///
/// Uses an R-tree over the *positions* of each object? No — over the
/// candidates: for each object position, a circle query finds the
/// candidates within range, accumulating per-candidate in-range position
/// counts; an object is influenced by every candidate whose count
/// reaches `⌈proportion · n⌉`.
pub fn range_baseline(
    objects: &[MovingObject],
    candidates: &[Point],
    config: RangeConfig,
) -> Vec<u32> {
    assert!(!candidates.is_empty(), "RANGE needs at least one candidate");
    let tree: RTree<usize> = candidates
        .iter()
        .enumerate()
        .map(|(j, &c)| (c, j))
        .collect();

    let mut influence = vec![0u32; candidates.len()];
    let mut in_range: Vec<u32> = vec![0; candidates.len()];
    let mut touched: Vec<usize> = Vec::new();

    for object in objects {
        touched.clear();
        for p in object.positions() {
            tree.query_circle(p, config.range_km, |_, &j| {
                if in_range[j] == 0 {
                    touched.push(j);
                }
                in_range[j] += 1;
            });
        }
        let needed = (config.proportion * object.position_count() as f64).ceil();
        // pinocchio-lint: allow(cast-truncation) -- clamped into [1, u32::MAX] in the float domain
        let needed = needed.clamp(1.0, u32::MAX as f64) as u32;
        for &j in &touched {
            if in_range[j] >= needed {
                influence[j] += 1;
            }
            in_range[j] = 0;
        }
    }
    influence
}

/// Convenience for the Table 3/4 experiment: rankings of all nine paper
/// combinations (outer Vec per combination).
pub fn range_nine_combo_rankings(
    objects: &[MovingObject],
    candidates: &[Point],
    scale_km: f64,
) -> Vec<Vec<usize>> {
    RangeConfig::paper_combinations(scale_km)
        .into_iter()
        .map(|cfg| crate::rank_descending(&range_baseline(objects, candidates, cfg)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportion_threshold_is_respected() {
        // Object with 4 positions; 2 are within 1 km of the candidate.
        let objects = vec![MovingObject::new(
            0,
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.5, 0.0),
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
            ],
        )];
        let candidates = vec![Point::new(0.2, 0.0)];
        // 50 % of 4 = 2 in-range needed: influenced.
        let inf = range_baseline(&objects, &candidates, RangeConfig::new(0.5, 1.0));
        assert_eq!(inf, vec![1]);
        // 75 % of 4 = 3 needed: not influenced.
        let inf = range_baseline(&objects, &candidates, RangeConfig::new(0.75, 1.0));
        assert_eq!(inf, vec![0]);
    }

    #[test]
    fn range_boundary_is_inclusive() {
        let objects = vec![MovingObject::new(0, vec![Point::new(1.0, 0.0)])];
        let candidates = vec![Point::new(0.0, 0.0)];
        let inf = range_baseline(&objects, &candidates, RangeConfig::new(1.0, 1.0));
        assert_eq!(inf, vec![1], "distance exactly equal to range counts");
    }

    #[test]
    fn multiple_candidates_can_influence_one_object() {
        // Unlike BRNN*, RANGE allows multi-facility influence.
        let objects = vec![MovingObject::new(
            0,
            vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)],
        )];
        let candidates = vec![Point::new(0.0, 0.1), Point::new(0.1, -0.1)];
        let inf = range_baseline(&objects, &candidates, RangeConfig::new(0.5, 0.5));
        assert_eq!(inf, vec![1, 1]);
    }

    #[test]
    fn paper_combinations_match_spec() {
        // Foursquare-like scale: 39.22 km → default range ≈ 0.196 km.
        let combos = RangeConfig::paper_combinations(39.22);
        assert_eq!(combos.len(), 9);
        let default = 0.005 * 39.22;
        assert!(combos.iter().any(|c| (c.range_km - default).abs() < 1e-12));
        assert!(combos
            .iter()
            .any(|c| (c.range_km - default * 0.5).abs() < 1e-12));
        assert!(combos
            .iter()
            .any(|c| (c.range_km - default * 2.0).abs() < 1e-12));
        assert!((0.19..0.21).contains(&default), "paper quotes ~0.2 km");
    }

    #[test]
    fn minimum_one_position_required() {
        // Tiny proportion on a single-position object still needs 1 hit.
        let objects = vec![MovingObject::new(0, vec![Point::new(5.0, 0.0)])];
        let candidates = vec![Point::new(0.0, 0.0)];
        let inf = range_baseline(&objects, &candidates, RangeConfig::new(0.01, 1.0));
        assert_eq!(inf, vec![0]);
    }

    #[test]
    #[should_panic(expected = "proportion")]
    fn bad_proportion_rejected() {
        let _ = RangeConfig::new(0.0, 1.0);
    }
}
