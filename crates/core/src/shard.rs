//! In-process sharded solving — object-partitioned shard workers with
//! merged influence partials.
//!
//! `inf(c)` is a plain sum over objects (Definition 3), so the object
//! universe `Ω` shards cleanly: each shard owns a disjoint subset of the
//! objects (routed by a deterministic hash of the object id, see
//! [`shard_of`]) together with its own [`PrimeLs`] instance — position
//! arena, candidate R-tree, cached `A_2D`, μ-aggregate object tree and
//! log-PF table — while the candidate set is broadcast to every shard.
//!
//! A solve runs in two phases:
//!
//! 1. **Per-shard filter** — every shard runs the existing filter
//!    machinery (`vo::prepare` for PIN-VO/PIN-VO*, the μ-tree
//!    [`classify`](crate::join) traversal for PIN-JOIN, or a full
//!    per-shard solve for NA/PIN) producing per-candidate
//!    `{minInf, maxInf, verification set}` partials plus a partial
//!    [`SolveStats`].
//! 2. **Coordinator merge + residual verify** — partials merge with the
//!    existing [`SolveStats`] `AddAssign` machinery and elementwise bound
//!    sums. Because the IA/NIB verdict of an (object, candidate) pair
//!    depends only on that object and the candidate — never on the other
//!    objects — the merged bounds are *equal* to the unsharded filter's
//!    bounds, and the merged verification sets are the disjoint union of
//!    the unsharded ones. The coordinator then drives exactly the
//!    Strategy 1 schedule of `parallel::solve_vo`: a shared best-first
//!    candidate queue, a monotone atomic `maxminInf` bound, and workers
//!    that fan the residual to-verify pairs back out to the owning
//!    shard's evaluator.
//!
//! The exactness argument is unchanged from the unsharded parallel
//! drivers: the bound only ever holds exact counts `≤ I*`, and skips or
//! kills require `maxInf` *strictly* below it, so every candidate
//! attaining `I*` is fully validated under every schedule and the
//! smallest-index tie-break returns the same `(j*, I*)` as every other
//! solver — best answers are bit-identical for every shard count.
//!
//! The residual verify is deliberately per-pair (untiled): the merged
//! bounds of a candidate only meet once the *last* shard's verification
//! set drains, while `vo::validate_tile` asserts per-slot bound closure
//! — an invariant that holds per shard only in the unsharded drivers.
//!
//! This module is the in-process seam for multi-process sharding: the
//! per-shard inputs ([`PrimeLs`]) and outputs (bounds + verification
//! sets + [`SolveStats`]) are plain data, so a future transport can move
//! them across processes without touching the merge; see
//! `pinocchio-serve`'s `ShardTransport` and DESIGN.md §16.

use crate::eval::EvalKernel;
use crate::problem::{BuildError, PrimeLs};
use crate::result::{argmax_smallest_index, Algorithm, SolveError, SolveResult, SolveStats};
use crate::vo;
use pinocchio_data::MovingObject;
use pinocchio_geo::Point;
use pinocchio_prob::ProbabilityFunction;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The shard that owns an object, from a deterministic hash of its wire
/// id — stable across processes, epochs and restarts, so routing never
/// depends on insertion order. The mixer is the splitmix64 finalizer
/// (full-avalanche, so sequential ids spread evenly).
pub fn shard_of(object_id: u64, shard_count: usize) -> usize {
    assert!(shard_count > 0, "need at least one shard");
    let mut h = object_id.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    usize::try_from(h % (shard_count as u64)).unwrap_or(0)
}

/// An object-partitioned PRIME-LS instance: one [`PrimeLs`] per
/// non-empty shard (empty shards hold `None` and contribute zero to
/// every merge), all sharing one broadcast candidate set.
#[derive(Debug, Clone)]
pub struct ShardedPrimeLs<P> {
    /// Shard slot → that shard's problem instance (`None` when the hash
    /// routed no objects there).
    shards: Vec<Option<PrimeLs<P>>>,
    /// The broadcast candidate set (identical, in identical order, on
    /// every shard).
    candidates: Vec<Point>,
}

impl<P: ProbabilityFunction + Clone> ShardedPrimeLs<P> {
    /// Partitions `objects` across `shard_count` shards by
    /// [`shard_of`] and builds one [`PrimeLs`] per non-empty shard,
    /// broadcasting `candidates` to all of them. Validation is the
    /// builder's: an entirely empty object set is
    /// [`BuildError::NoObjects`], and candidate/τ/PF validation applies
    /// per shard exactly as unsharded.
    pub fn partition(
        objects: Vec<MovingObject>,
        candidates: Vec<Point>,
        pf: P,
        tau: f64,
        kernel: EvalKernel,
        shard_count: usize,
    ) -> Result<Self, BuildError> {
        let n = shard_count.max(1);
        let mut buckets: Vec<Vec<MovingObject>> = vec![Vec::new(); n];
        for object in objects {
            buckets[shard_of(object.id(), n)].push(object);
        }
        if buckets.iter().all(Vec::is_empty) {
            return Err(BuildError::NoObjects);
        }
        let mut shards = Vec::with_capacity(n);
        for bucket in buckets {
            if bucket.is_empty() {
                shards.push(None);
            } else {
                shards.push(Some(
                    PrimeLs::builder()
                        .objects(bucket)
                        .candidates(candidates.clone())
                        .probability_function(pf.clone())
                        .tau(tau)
                        .evaluation_kernel(kernel)
                        .build()?,
                ));
            }
        }
        Ok(ShardedPrimeLs { shards, candidates })
    }

    /// Assembles a sharded instance from already-built per-shard
    /// problems (the serve layer constructs these from its per-shard
    /// dynamic state). Every `Some` shard must carry the same candidate
    /// set in the same order; all-`None` is [`BuildError::NoObjects`].
    pub fn from_problems(shards: Vec<Option<PrimeLs<P>>>) -> Result<Self, BuildError> {
        let Some(first) = shards.iter().flatten().next() else {
            return Err(BuildError::NoObjects);
        };
        let candidates = first.candidates().to_vec();
        debug_assert!(
            shards
                .iter()
                .flatten()
                .all(|p| p.candidates().len() == candidates.len()),
            "every shard must broadcast the same candidate set"
        );
        Ok(ShardedPrimeLs { shards, candidates })
    }

    /// Number of shard slots (including empty ones).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-slot problem instances (`None` = empty shard).
    pub fn shards(&self) -> &[Option<PrimeLs<P>>] {
        &self.shards
    }

    /// The broadcast candidate set.
    pub fn candidates(&self) -> &[Point] {
        &self.candidates
    }

    /// Objects owned by each shard slot (0 for empty shards).
    pub fn object_counts(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.as_ref().map_or(0, |p| p.objects().len()))
            .collect()
    }
}

/// Per-phase wall-clock of a sharded solve, measured per shard so the
/// scaling analysis does not depend on the host's core count: on a
/// machine with at least `shard_count` cores the solve's wall-clock is
/// the critical path `max(prepare) + coordinator`, which this type
/// reports directly even when the shards were timed on fewer cores.
#[derive(Debug, Clone)]
pub struct ShardTimings {
    /// Seconds each shard slot spent in its filter phase (0.0 for empty
    /// shards).
    pub prepare_seconds: Vec<f64>,
    /// Seconds the coordinator spent merging partials and running the
    /// residual verification.
    pub coordinator_seconds: f64,
}

impl ShardTimings {
    /// `max(prepare) + coordinator` — the wall-clock lower bound of this
    /// solve on a host with one core per shard.
    pub fn critical_path_seconds(&self) -> f64 {
        let slowest = self.prepare_seconds.iter().copied().fold(0.0, f64::max);
        slowest + self.coordinator_seconds
    }
}

/// Solves the sharded instance, merging per-shard partials at the
/// coordinator — same answers as the unsharded solvers, for every shard
/// count and thread count.
///
/// `threads` sets the residual-verify worker count; the filter phase
/// additionally runs one worker per non-empty shard whenever
/// `threads > 1` (with `threads == 1` everything runs on the calling
/// thread, reproducing a fully sequential schedule).
///
/// # Panics
/// Panics if `threads == 0`.
pub fn solve_sharded<P: ProbabilityFunction + Clone + Sync>(
    sharded: &ShardedPrimeLs<P>,
    algorithm: Algorithm,
    threads: usize,
) -> SolveResult {
    assert!(threads > 0, "need at least one thread");
    match try_solve_sharded(sharded, algorithm, threads) {
        Ok(result) => result,
        // pinocchio-lint: allow(panic-path) -- ZeroThreads is asserted away above and NoValidatedCandidate is impossible for constructor-validated shards; kept panicking to mirror the other solver entry points
        Err(e) => panic!("sharded solve invariant violated: {e}"),
    }
}

/// Fallible form of [`solve_sharded`]: [`SolveError::ZeroThreads`] for
/// `threads == 0`, [`SolveError::NoValidatedCandidate`] if no candidate
/// survives validation (impossible for constructor-validated instances,
/// whose candidate sets are non-empty).
pub fn try_solve_sharded<P: ProbabilityFunction + Clone + Sync>(
    sharded: &ShardedPrimeLs<P>,
    algorithm: Algorithm,
    threads: usize,
) -> Result<SolveResult, SolveError> {
    try_solve_sharded_timed(sharded, algorithm, threads).map(|(result, _)| result)
}

/// As [`try_solve_sharded`], additionally reporting per-shard phase
/// timings ([`ShardTimings`]) for scaling analysis.
pub fn try_solve_sharded_timed<P: ProbabilityFunction + Clone + Sync>(
    sharded: &ShardedPrimeLs<P>,
    algorithm: Algorithm,
    threads: usize,
) -> Result<(SolveResult, ShardTimings), SolveError> {
    if threads == 0 {
        return Err(SolveError::ZeroThreads);
    }
    let start = Instant::now();
    match algorithm {
        Algorithm::Naive | Algorithm::Pinocchio => solve_counts(sharded, algorithm, threads, start),
        Algorithm::PinocchioVo => {
            solve_bounds(sharded, algorithm, Filter::VoPruned, threads, start)
        }
        Algorithm::PinocchioVoStar => {
            solve_bounds(sharded, algorithm, Filter::VoUnpruned, threads, start)
        }
        Algorithm::PinocchioJoin => solve_bounds(sharded, algorithm, Filter::Join, threads, start),
    }
}

/// NA/PIN path: both compute exact per-candidate influence vectors, so
/// the merge is a plain elementwise sum of the per-shard vectors — the
/// same partial shape `parallel::solve_naive` merges across stripes,
/// with the hash partition standing in for the stripe boundaries.
fn solve_counts<P: ProbabilityFunction + Clone + Sync>(
    sharded: &ShardedPrimeLs<P>,
    algorithm: Algorithm,
    threads: usize,
    start: Instant,
) -> Result<(SolveResult, ShardTimings), SolveError> {
    let solve_one = |p: &PrimeLs<P>| -> SolveResult {
        match algorithm {
            Algorithm::Naive => crate::naive::solve(p),
            _ => crate::pinocchio::solve(p),
        }
    };
    let per_shard: Vec<Option<SolveResult>> = if threads == 1 {
        sharded
            .shards
            .iter()
            .map(|s| s.as_ref().map(solve_one))
            .collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = sharded
                .shards
                .iter()
                .map(|s| s.as_ref().map(|p| scope.spawn(|| solve_one(p))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.map(crate::parallel::join_worker))
                .collect()
        })
    };

    let merge_start = Instant::now();
    let m = sharded.candidates.len();
    let mut influences = vec![0u32; m];
    let mut stats = SolveStats::default();
    let mut prepare_seconds = vec![0.0f64; sharded.shards.len()];
    for (slot, result) in per_shard.into_iter().enumerate() {
        let Some(r) = result else { continue };
        prepare_seconds[slot] = r.elapsed.as_secs_f64();
        stats += r.stats;
        if let Some(partial) = r.influences {
            for (acc, v) in influences.iter_mut().zip(partial) {
                *acc += v;
            }
        }
    }
    let (best_candidate, max_influence) =
        argmax_smallest_index(&influences).ok_or(SolveError::NoValidatedCandidate)?;
    let timings = ShardTimings {
        prepare_seconds,
        coordinator_seconds: merge_start.elapsed().as_secs_f64(),
    };
    Ok((
        SolveResult {
            algorithm,
            best_candidate,
            best_location: sharded.candidates[best_candidate],
            max_influence,
            influences: Some(influences),
            stats,
            elapsed: start.elapsed(),
        },
        timings,
    ))
}

/// Which per-shard filter the bounds path fans out.
#[derive(Clone, Copy)]
enum Filter {
    /// `vo::prepare` with IA/NIB pruning (PIN-VO).
    VoPruned,
    /// `vo::prepare` without pruning (PIN-VO*): trivial bounds, every
    /// influenceable object in every verification set.
    VoUnpruned,
    /// The μ-aggregate tree traversal (PIN-JOIN).
    Join,
}

/// One shard's filter output. `vs` entries are *shard-local* dense
/// object indices — only ever resolved against the owning shard's
/// evaluator.
struct Partial {
    prep: vo::Prepared,
    /// `true` when the verification set is the shared no-pruning list
    /// (`vs_all`) rather than per-candidate stores.
    shared_vs: bool,
}

impl Partial {
    fn vs(&self, j: usize) -> &[u32] {
        if self.shared_vs {
            &self.prep.vs_all
        } else {
            &self.prep.vs_store[j]
        }
    }
}

/// Runs the PIN-JOIN filter on one shard, shaped into the same partial
/// as `vo::prepare`: per candidate, one μ-tree traversal yields the
/// certified influence (subtree/entry IA), the excluded count
/// (subtree/entry NIB) and the sorted undecided set.
fn prepare_join<P: ProbabilityFunction + Clone>(problem: &PrimeLs<P>) -> vo::Prepared {
    let mut stats = SolveStats::default();
    let a2d = problem.a2d();
    stats.uninfluenceable_objects = (a2d.entries().len() - a2d.influenceable()) as u64;
    let tree = problem.object_tree();
    let m = problem.candidates().len();
    let mut min_inf = vec![0u32; m];
    let mut max_inf = vec![0u32; m];
    let mut vs_store: Vec<Vec<u32>> = vec![Vec::new(); m];
    for (j, c) in problem.candidates().iter().enumerate() {
        let inf = crate::join::classify(tree, c, &mut vs_store[j], &mut stats);
        // Ascending object order, matching `vo::prepare`'s A2d sweep, so
        // the residual verify walks each shard's arena front to back.
        vs_store[j].sort_unstable();
        min_inf[j] = inf;
        max_inf[j] = inf + u32::try_from(vs_store[j].len()).unwrap_or(u32::MAX);
    }
    vo::Prepared {
        min_inf,
        max_inf,
        vs_store,
        vs_all: Vec::new(),
        stats,
    }
}

/// VO/VO*/JOIN path: per-shard filter fan-out, coordinator bound merge,
/// then the Strategy 1 residual verify over the merged queue.
fn solve_bounds<P: ProbabilityFunction + Clone + Sync>(
    sharded: &ShardedPrimeLs<P>,
    algorithm: Algorithm,
    filter: Filter,
    threads: usize,
    start: Instant,
) -> Result<(SolveResult, ShardTimings), SolveError> {
    let m = sharded.candidates.len();
    let active: Vec<(usize, &PrimeLs<P>)> = sharded
        .shards
        .iter()
        .enumerate()
        .filter_map(|(slot, s)| s.as_ref().map(|p| (slot, p)))
        .collect();

    let prepare_one = |p: &PrimeLs<P>| -> (Partial, f64) {
        let t = Instant::now();
        let partial = match filter {
            Filter::VoPruned => Partial {
                prep: vo::prepare(p, true),
                shared_vs: false,
            },
            Filter::VoUnpruned => Partial {
                prep: vo::prepare(p, false),
                shared_vs: true,
            },
            Filter::Join => Partial {
                prep: prepare_join(p),
                shared_vs: false,
            },
        };
        (partial, t.elapsed().as_secs_f64())
    };
    let prepared: Vec<(Partial, f64)> = if threads == 1 {
        active.iter().map(|&(_, p)| prepare_one(p)).collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = active
                .iter()
                .map(|&(_, p)| scope.spawn(|| prepare_one(p)))
                .collect();
            handles
                .into_iter()
                .map(crate::parallel::join_worker)
                .collect()
        })
    };
    let mut prepare_seconds = vec![0.0f64; sharded.shards.len()];
    let mut partials: Vec<Partial> = Vec::with_capacity(active.len());
    for ((slot, _), (partial, secs)) in active.iter().zip(prepared) {
        prepare_seconds[*slot] = secs;
        partials.push(partial);
    }

    let coord_start = Instant::now();
    // Elementwise bound merge. Per-pair IA/NIB verdicts depend only on
    // the object and the candidate set, so these sums are *equal* to the
    // unsharded filter's starting bounds (DESIGN.md §16).
    let mut min_inf = vec![0u32; m];
    let mut max_inf = vec![0u32; m];
    let mut stats = SolveStats::default();
    for partial in &partials {
        for (acc, v) in min_inf.iter_mut().zip(&partial.prep.min_inf) {
            *acc += v;
        }
        for (acc, v) in max_inf.iter_mut().zip(&partial.prep.max_inf) {
            *acc += v;
        }
        stats += partial.prep.stats;
    }

    // Shared candidate queue, best-first by (maxInf, minInf); smallest
    // index first among equals — the same schedule as the unsharded
    // work-stealing driver.
    let queue: Mutex<BinaryHeap<(u32, u32, Reverse<usize>)>> = Mutex::new(
        (0..m)
            .map(|j| (max_inf[j], min_inf[j], Reverse(j)))
            .collect(),
    );
    // The shared monotone bound, seeded with the best certified lower
    // bound. `fetch_max` keeps it monotone under concurrent publishes.
    let bound = AtomicU32::new(min_inf.iter().copied().max().unwrap_or(0));

    let problems: Vec<&PrimeLs<P>> = active.iter().map(|&(_, p)| p).collect();
    let worker_results: Vec<(SolveStats, Option<(u32, usize)>)> = if threads == 1 {
        vec![residual_worker(
            &problems,
            &partials,
            &sharded.candidates,
            (&min_inf, &max_inf),
            &queue,
            &bound,
        )]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        residual_worker(
                            &problems,
                            &partials,
                            &sharded.candidates,
                            (&min_inf, &max_inf),
                            &queue,
                            &bound,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(crate::parallel::join_worker)
                .collect()
        })
    };

    let mut best: Option<(u32, usize)> = None;
    for (partial_stats, local_best) in worker_results {
        stats += partial_stats;
        if let Some((inf, j)) = local_best {
            match best {
                Some((binf, bidx)) if inf < binf || (inf == binf && bidx < j) => {}
                _ => best = Some((inf, j)),
            }
        }
    }
    let (max_influence, best_candidate) = best.ok_or(SolveError::NoValidatedCandidate)?;
    let timings = ShardTimings {
        prepare_seconds,
        coordinator_seconds: coord_start.elapsed().as_secs_f64(),
    };
    Ok((
        SolveResult {
            algorithm,
            best_candidate,
            best_location: sharded.candidates[best_candidate],
            max_influence,
            influences: None,
            stats,
            elapsed: start.elapsed(),
        },
        timings,
    ))
}

/// One residual-verify worker: pops candidates best-first from the
/// merged queue and walks their per-shard verification sets in shard
/// order against the owning shard's evaluator, under the shared
/// Strategy 1 bound. Per-pair (untiled) by design — see the module docs.
fn residual_worker<P: ProbabilityFunction + Clone>(
    problems: &[&PrimeLs<P>],
    partials: &[Partial],
    candidates: &[Point],
    merged_bounds: (&[u32], &[u32]),
    queue: &Mutex<BinaryHeap<(u32, u32, Reverse<usize>)>>,
    bound: &AtomicU32,
) -> (SolveStats, Option<(u32, usize)>) {
    let (min_inf, max_inf) = merged_bounds;
    let mut pairs: Vec<_> = problems.iter().map(|p| p.pair_eval()).collect();
    let mut stats = SolveStats::default();
    let mut best: Option<(u32, usize)> = None;
    let vs_total =
        |j: usize| -> u64 { partials.iter().map(|pt| pt.vs(j).len() as u64).sum::<u64>() };
    loop {
        let job: Option<usize> = {
            // The critical section only peeks/pops/clears, all of which
            // leave the heap structurally valid, so a poisoned lock
            // (another worker panicked mid-section) can be recovered: the
            // panic itself still surfaces via join.
            let mut heap = match queue.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            match heap.peek().copied() {
                None => None,
                // ordering: Acquire pairs with the Release half of the
                // workers' `fetch_max` publishes below, so the cut-off
                // observes every influence count published before it; a
                // stale (smaller) value only delays the cut-off and can
                // never fire it early, preserving exactness.
                Some((top_max, _, _)) if top_max < bound.load(Ordering::Acquire) => {
                    if let Some((_, _, Reverse(j))) = heap.pop() {
                        // Strategy 1 cut-off: the queue is ordered by
                        // maxInf, so the popped candidate and everything
                        // left are dead. Account for them once, under the
                        // lock, and drain the heap so the other workers
                        // stop too.
                        stats.candidates_skipped_by_bounds += 1 + heap.len() as u64;
                        stats.pairs_skipped_by_bounds += vs_total(j)
                            + heap
                                .iter()
                                .map(|&(_, _, Reverse(r))| vs_total(r))
                                .sum::<u64>();
                        heap.clear();
                    }
                    None
                }
                Some(_) => heap.pop().map(|(_, _, Reverse(j))| j),
            }
        };
        let Some(j) = job else {
            break;
        };
        let mut min = min_inf[j];
        let mut max = max_inf[j];
        let mut killed = false;
        'verify: for (si, pair) in pairs.iter_mut().enumerate() {
            let vs = partials[si].vs(j);
            for (pos, &k) in vs.iter().enumerate() {
                if pair.influences(&candidates[j], k as usize, true, &mut stats) {
                    min += 1;
                } else {
                    max -= 1;
                    // ordering: Acquire pairs with the `fetch_max` Release
                    // publishes — the mid-validation kill observes fresh
                    // bounds; staleness is again only a cost, never an
                    // error.
                    if max < bound.load(Ordering::Acquire) {
                        // Strategy 1, mid-validation variant: the rest of
                        // this shard's set and every later shard's whole
                        // set are skipped.
                        stats.pairs_skipped_by_bounds += (vs.len() - pos - 1) as u64
                            + partials
                                .iter()
                                .skip(si + 1)
                                .map(|pt| pt.vs(j).len() as u64)
                                .sum::<u64>();
                        killed = true;
                        break 'verify;
                    }
                }
            }
        }
        if !killed {
            stats.candidates_fully_validated += 1;
            debug_assert_eq!(min, max, "merged bounds must meet after full validation");
            // ordering: AcqRel — the Release half publishes this exact
            // count to the other workers' Acquire loads; the Acquire half
            // orders the read-modify-write after earlier publishes so the
            // bound is monotone non-decreasing.
            bound.fetch_max(min, Ordering::AcqRel);
            match best {
                Some((inf, idx)) if min < inf || (min == inf && idx < j) => {}
                _ => best = Some((min, j)),
            }
        }
    }
    (stats, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use pinocchio_data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
    use pinocchio_prob::PowerLawPf;

    fn world(seed: u64, users: usize, cands: usize) -> (Vec<MovingObject>, Vec<Point>) {
        let d = SyntheticGenerator::new(GeneratorConfig::small(users, seed)).generate();
        let (_, candidates) = sample_candidate_group(&d, cands, seed);
        (d.objects().to_vec(), candidates)
    }

    fn unsharded(objects: &[MovingObject], candidates: &[Point], tau: f64) -> PrimeLs<PowerLawPf> {
        PrimeLs::builder()
            .objects(objects.to_vec())
            .candidates(candidates.to_vec())
            .probability_function(PowerLawPf::paper_default())
            .tau(tau)
            .build()
            .unwrap()
    }

    fn sharded(
        objects: &[MovingObject],
        candidates: &[Point],
        tau: f64,
        n: usize,
    ) -> ShardedPrimeLs<PowerLawPf> {
        ShardedPrimeLs::partition(
            objects.to_vec(),
            candidates.to_vec(),
            PowerLawPf::paper_default(),
            tau,
            EvalKernel::Scalar,
            n,
        )
        .unwrap()
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for n in [1, 2, 4, 8, 13] {
            for id in 0..500u64 {
                let s = shard_of(id, n);
                assert!(s < n);
                assert_eq!(s, shard_of(id, n), "routing must be stable");
            }
        }
        // Sequential ids must spread: every one of 4 shards sees a share.
        let mut counts = [0usize; 4];
        for id in 0..1000u64 {
            counts[shard_of(id, 4)] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 150),
            "splitmix spread too skewed: {counts:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn shard_of_rejects_zero_shards() {
        let _ = shard_of(1, 0);
    }

    #[test]
    fn partition_rejects_empty_inputs() {
        let (objects, candidates) = world(1, 10, 5);
        let err = ShardedPrimeLs::partition(
            Vec::new(),
            candidates.clone(),
            PowerLawPf::paper_default(),
            0.7,
            EvalKernel::Scalar,
            4,
        )
        .unwrap_err();
        assert_eq!(err, BuildError::NoObjects);
        let err = ShardedPrimeLs::partition(
            objects,
            Vec::new(),
            PowerLawPf::paper_default(),
            0.7,
            EvalKernel::Scalar,
            4,
        )
        .unwrap_err();
        assert_eq!(err, BuildError::NoCandidates);
        assert_eq!(
            ShardedPrimeLs::<PowerLawPf>::from_problems(vec![None, None]).unwrap_err(),
            BuildError::NoObjects
        );
    }

    #[test]
    fn sharded_matches_unsharded_for_every_algorithm_and_shard_count() {
        for (tau, seed) in [(0.5, 11), (0.7, 12)] {
            let (objects, candidates) = world(seed, 80, 30);
            let reference = unsharded(&objects, &candidates, tau);
            for n in [1, 2, 4, 8] {
                let s = sharded(&objects, &candidates, tau, n);
                assert_eq!(s.shard_count(), n);
                for algorithm in Algorithm::WITH_EXTENSIONS {
                    let seq = reference.solve(algorithm);
                    for threads in [1, 3] {
                        let par = solve_sharded(&s, algorithm, threads);
                        assert_eq!(
                            par.best_candidate, seq.best_candidate,
                            "{algorithm:?} tau={tau} seed={seed} shards={n} threads={threads}"
                        );
                        assert_eq!(par.max_influence, seq.max_influence);
                        assert_eq!(
                            (par.best_location.x.to_bits(), par.best_location.y.to_bits()),
                            (seq.best_location.x.to_bits(), seq.best_location.y.to_bits())
                        );
                        assert_eq!(par.algorithm, algorithm);
                    }
                }
            }
        }
    }

    #[test]
    fn counts_path_reproduces_sequential_influences_and_stats() {
        let (objects, candidates) = world(13, 70, 25);
        let reference = unsharded(&objects, &candidates, 0.7);
        for n in [2, 4, 8] {
            let s = sharded(&objects, &candidates, 0.7, n);
            let na = solve_sharded(&s, Algorithm::Naive, 2);
            let na_seq = naive::solve(&reference);
            assert_eq!(na.influences, na_seq.influences, "shards={n}");
            assert_eq!(na.stats, na_seq.stats, "NA stats are partition-invariant");
            let pin = solve_sharded(&s, Algorithm::Pinocchio, 2);
            let pin_seq = crate::pinocchio::solve(&reference);
            assert_eq!(pin.influences, pin_seq.influences, "shards={n}");
            assert_eq!(
                pin.stats, pin_seq.stats,
                "PIN stats are partition-invariant"
            );
        }
    }

    #[test]
    fn merged_filter_bounds_equal_unsharded_bounds() {
        // The soundness core of the coordinator: elementwise sums of the
        // per-shard prepare partials reproduce the unsharded prepare —
        // bounds and (A2d-derived) counters alike — for 2/4/8 shards.
        let (objects, candidates) = world(14, 90, 30);
        let reference = unsharded(&objects, &candidates, 0.7);
        let whole = vo::prepare(&reference, true);
        let m = candidates.len();
        for n in [2, 4, 8] {
            let s = sharded(&objects, &candidates, 0.7, n);
            let mut min_inf = vec![0u32; m];
            let mut max_inf = vec![0u32; m];
            let mut stats = SolveStats::default();
            let mut vs_sizes = vec![0u64; m];
            for problem in s.shards().iter().flatten() {
                let prep = vo::prepare(problem, true);
                for (acc, v) in min_inf.iter_mut().zip(&prep.min_inf) {
                    *acc += v;
                }
                for (acc, v) in max_inf.iter_mut().zip(&prep.max_inf) {
                    *acc += v;
                }
                for (acc, vs) in vs_sizes.iter_mut().zip(&prep.vs_store) {
                    *acc += vs.len() as u64;
                }
                stats += prep.stats;
            }
            assert_eq!(min_inf, whole.min_inf, "shards={n}");
            assert_eq!(max_inf, whole.max_inf, "shards={n}");
            assert_eq!(stats, whole.stats, "prepare counters merge exactly");
            let whole_sizes: Vec<u64> = whole.vs_store.iter().map(|v| v.len() as u64).collect();
            assert_eq!(vs_sizes, whole_sizes, "vs sets are a disjoint union");
            // skipped + evaluated = total: the filter accounts every
            // influenceable pair as decided or still-to-verify.
            let influenceable = reference.a2d().influenceable() as u64;
            let to_verify: u64 = vs_sizes.iter().sum();
            assert_eq!(
                stats.decided_by_ia + stats.decided_by_nib + to_verify,
                influenceable * m as u64,
                "shards={n}"
            );
        }
    }

    #[test]
    fn solve_stats_merge_survives_every_counter() {
        // AddAssign is a fieldwise sum, so partial order must not matter
        // and no counter may be dropped — including all-zero (empty
        // shard) partials and a partial carrying the whole load.
        let partial = |base: u64| SolveStats {
            decided_by_ia: base + 1,
            decided_by_nib: base + 2,
            validated_pairs: base + 3,
            positions_evaluated: base + 4,
            candidates_fully_validated: base + 5,
            candidates_skipped_by_bounds: base + 6,
            pairs_skipped_by_bounds: base + 7,
            uninfluenceable_objects: base + 8,
            blocks_pruned: base + 9,
            positions_skipped_by_blocks: base + 10,
            subtrees_pruned_ia: base + 11,
            subtrees_pruned_nib: base + 12,
            join_nodes_visited: base + 13,
            log_band_fallbacks: base + 14,
            cells_resolved_ia: base + 15,
            cells_resolved_nib: base + 16,
            cells_refined: base + 17,
        };
        for n in [2usize, 4, 8] {
            // One empty-shard partial, one carrying 10x the load of the
            // rest — the all-objects-on-one-shard shape.
            let mut partials: Vec<SolveStats> = (0..n as u64).map(|s| partial(s * 100)).collect();
            partials[0] = SolveStats::default();
            if n > 1 {
                partials[1] = partial(1000);
            }
            let mut forward = SolveStats::default();
            for p in &partials {
                forward += *p;
            }
            let mut backward = SolveStats::default();
            for p in partials.iter().rev() {
                backward += *p;
            }
            assert_eq!(forward, backward, "merge order must not matter (n={n})");
            assert_eq!(
                forward.accounted_pairs(),
                partials
                    .iter()
                    .map(SolveStats::accounted_pairs)
                    .sum::<u64>(),
                "accounting identity distributes over the merge (n={n})"
            );
            assert_eq!(
                forward.positions_evaluated,
                partials.iter().map(|p| p.positions_evaluated).sum::<u64>()
            );
            assert_eq!(
                forward.join_nodes_visited,
                partials.iter().map(|p| p.join_nodes_visited).sum::<u64>()
            );
            assert_eq!(
                forward.log_band_fallbacks,
                partials.iter().map(|p| p.log_band_fallbacks).sum::<u64>()
            );
        }
    }

    #[test]
    fn sharded_accounting_is_complete() {
        let (objects, candidates) = world(15, 80, 30);
        let reference = unsharded(&objects, &candidates, 0.7);
        let influenceable_pairs = (reference.a2d().influenceable() * candidates.len()) as u64;
        let all_pairs = (objects.len() * candidates.len()) as u64;
        for n in [2, 4, 8] {
            let s = sharded(&objects, &candidates, 0.7, n);
            for threads in [1, 3] {
                let na = solve_sharded(&s, Algorithm::Naive, threads);
                assert_eq!(na.stats.accounted_pairs(), all_pairs, "NA shards={n}");
                for algorithm in [
                    Algorithm::Pinocchio,
                    Algorithm::PinocchioVo,
                    Algorithm::PinocchioVoStar,
                    Algorithm::PinocchioJoin,
                ] {
                    let r = solve_sharded(&s, algorithm, threads);
                    assert_eq!(
                        r.stats.accounted_pairs(),
                        influenceable_pairs,
                        "{algorithm:?} shards={n} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_single_owner_shards_are_handled() {
        // Two objects across 8 shards: at least six slots are empty.
        let (objects, candidates) = world(16, 40, 20);
        let few: Vec<MovingObject> = objects.iter().take(2).cloned().collect();
        let s = sharded(&few, &candidates, 0.7, 8);
        assert!(s.object_counts().iter().filter(|&&c| c == 0).count() >= 6);
        let reference = unsharded(&few, &candidates, 0.7);
        for algorithm in Algorithm::WITH_EXTENSIONS {
            let par = solve_sharded(&s, algorithm, 2);
            let seq = reference.solve(algorithm);
            assert_eq!(par.best_candidate, seq.best_candidate, "{algorithm:?}");
            assert_eq!(par.max_influence, seq.max_influence);
        }

        // All objects routed to one shard: renumber ids so every object
        // hashes to slot 0 of 4.
        let mut owner_ids = (0u64..).filter(|&id| shard_of(id, 4) == 0);
        let skewed: Vec<MovingObject> = objects
            .iter()
            .map(|o| MovingObject::new(owner_ids.next().unwrap(), o.positions().to_vec()))
            .collect();
        let s = sharded(&skewed, &candidates, 0.7, 4);
        let counts = s.object_counts();
        assert_eq!(counts[0], skewed.len(), "hash must route all to slot 0");
        assert_eq!(counts[1..].iter().sum::<usize>(), 0);
        let reference = unsharded(&skewed, &candidates, 0.7);
        for algorithm in Algorithm::WITH_EXTENSIONS {
            let par = solve_sharded(&s, algorithm, 2);
            let seq = reference.solve(algorithm);
            assert_eq!(par.best_candidate, seq.best_candidate, "{algorithm:?}");
            assert_eq!(par.max_influence, seq.max_influence);
        }
    }

    #[test]
    fn zero_threads_is_an_error() {
        let (objects, candidates) = world(17, 20, 10);
        let s = sharded(&objects, &candidates, 0.7, 2);
        assert_eq!(
            try_solve_sharded(&s, Algorithm::PinocchioVo, 0).err(),
            Some(SolveError::ZeroThreads)
        );
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics_on_infallible_entry() {
        let (objects, candidates) = world(17, 20, 10);
        let s = sharded(&objects, &candidates, 0.7, 2);
        let _ = solve_sharded(&s, Algorithm::PinocchioVo, 0);
    }

    #[test]
    fn timings_report_per_shard_prepare_and_critical_path() {
        let (objects, candidates) = world(18, 60, 20);
        let s = sharded(&objects, &candidates, 0.7, 4);
        let (result, timings) =
            try_solve_sharded_timed(&s, Algorithm::PinocchioVo, 1).expect("solvable");
        assert_eq!(result.algorithm, Algorithm::PinocchioVo);
        assert_eq!(timings.prepare_seconds.len(), 4);
        let slowest = timings
            .prepare_seconds
            .iter()
            .copied()
            .fold(0.0f64, f64::max);
        assert!(timings.critical_path_seconds() >= slowest);
        assert!(timings.critical_path_seconds() >= timings.coordinator_seconds);
        // Empty slots report exactly zero.
        for (slot, count) in s.object_counts().iter().enumerate() {
            if *count == 0 {
                assert_eq!(timings.prepare_seconds[slot], 0.0);
            }
        }
    }

    #[test]
    fn log_blocked_kernel_shards_bit_identically() {
        let (objects, candidates) = world(19, 80, 30);
        let reference =
            unsharded(&objects, &candidates, 0.7).with_evaluation_kernel(EvalKernel::LogBlocked);
        let s = ShardedPrimeLs::partition(
            objects,
            candidates,
            PowerLawPf::paper_default(),
            0.7,
            EvalKernel::LogBlocked,
            4,
        )
        .unwrap();
        for algorithm in Algorithm::WITH_EXTENSIONS {
            let par = solve_sharded(&s, algorithm, 3);
            let seq = reference.solve(algorithm);
            assert_eq!(par.best_candidate, seq.best_candidate, "{algorithm:?}");
            assert_eq!(par.max_influence, seq.max_influence);
        }
    }
}
