//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, `prop::collection::vec`,
//! [`prop_oneof!`], `any::<T>()`, [`Just`], and the `prop_assert*`
//! macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases drawn
//! from a deterministic per-test RNG (seeded from the test name, or from
//! `PROPTEST_SEED` when set, so failures reproduce). There is **no
//! shrinking** — a failing case reports its case index and seed instead
//! of a minimised input. That trades debugging convenience for zero
//! dependencies; the assertions checked are identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies during sampling.
pub type TestRng = StdRng;

/// Creates the deterministic per-case RNG ([`proptest!`] expansion
/// helper — dependent crates need not depend on `rand` themselves).
pub fn new_rng(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// Test-runner types: configuration and the error carried by
/// `prop_assert*`.
pub mod test_runner {
    /// Per-`proptest!` block configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property-test case (carries the assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type of a property-test body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Derives the base RNG seed for a test: `PROPTEST_SEED` when set,
    /// otherwise an FNV-1a hash of the test name (stable across runs).
    pub fn base_seed(test_name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse() {
                return seed;
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree: `sample` draws a value
/// directly and nothing shrinks.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps every sampled value through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Samples a value, then samples from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (what `prop_oneof!` arms become).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, usize, u64, u32, u16, u8, i64, i32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Strategy for any value of a type with a standard distribution
/// (`any::<u64>()`, `any::<bool>()`, …).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        rng.gen()
    }
}

/// Creates a strategy producing arbitrary values of `T`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Anything `vec` accepts as a length: an exact `usize` or a range.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// The `prop` namespace re-exports (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, Strategy, Union,
    };
}

/// Asserts a condition inside a property-test body, failing the case
/// (not panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property-test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a property-test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: both sides equal `{:?}`",
                l
            )));
        }
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random samples of the strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — one test fn per repetition.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let base = $crate::test_runner::base_seed(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let seed = base.wrapping_add(case as u64);
                let mut rng = $crate::new_rng(seed);
                $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed (rerun with PROPTEST_SEED={}): {}",
                        case + 1,
                        config.cases,
                        seed,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_maps_compose(
            p in (0.0f64..10.0, 0.0f64..10.0).prop_map(|(a, b)| a + b),
            exact in prop::collection::vec(any::<u64>(), 3),
        ) {
            prop_assert!((0.0..20.0).contains(&p));
            prop_assert_eq!(exact.len(), 3);
        }

        #[test]
        fn oneof_and_flat_map(
            v in prop_oneof![Just(1u32), Just(2u32)],
            w in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u32..10, n)),
        ) {
            prop_assert!(v == 1 || v == 2);
            prop_assert!(!w.is_empty() && w.len() < 4);
        }
    }

    #[test]
    fn failures_surface_the_message() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let err = result.expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("proptest case 1/4"), "{msg}");
    }
}
