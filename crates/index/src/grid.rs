//! A uniform grid index.
//!
//! Used by the `ablation_index` benchmark as the comparison structure for
//! the R-tree (the paper's footnote 2 notes "other hierarchical spatial
//! data structures can also be applied"; the grid quantifies what the
//! hierarchy buys). Points are hashed into fixed-size square cells; range
//! queries enumerate the cells overlapping the query region.

use crate::stats::QueryStats;
use pinocchio_geo::{Mbr, Point};

/// A uniform grid over a fixed frame, storing `(Point, T)` pairs.
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    frame: Mbr,
    cell_size: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<(Point, T)>>,
    len: usize,
}

impl<T: Clone> GridIndex<T> {
    /// Creates an empty grid covering `frame` with square cells of side
    /// `cell_size` kilometres.
    ///
    /// # Panics
    /// Panics if `cell_size` is not positive or the frame is degenerate
    /// in both axes.
    pub fn new(frame: Mbr, cell_size: f64) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        assert!(
            frame.width() > 0.0 || frame.height() > 0.0,
            "grid frame must have positive extent"
        );
        #[allow(clippy::cast_possible_truncation)]
        // `.max(1.0)` keeps the value in [1, extent/cell_size], far below 2^52
        let cols = (frame.width() / cell_size).ceil().max(1.0) as usize;
        #[allow(clippy::cast_possible_truncation)]
        // `.max(1.0)` keeps the value in [1, extent/cell_size], far below 2^52
        let rows = (frame.height() / cell_size).ceil().max(1.0) as usize;
        GridIndex {
            frame,
            cell_size,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            len: 0,
        }
    }

    /// Builds a grid sized so the average cell holds ~`target_per_cell`
    /// points, then inserts all items.
    pub fn build(items: Vec<(Point, T)>, target_per_cell: usize) -> Option<Self> {
        let frame = Mbr::from_points(&items.iter().map(|(p, _)| *p).collect::<Vec<_>>())?;
        let area = frame.area().max(1e-9);
        let cell = (area * target_per_cell.max(1) as f64 / items.len().max(1) as f64).sqrt();
        let mut grid = Self::new(frame, cell.max(1e-6));
        for (p, t) in items {
            grid.insert(p, t);
        }
        Some(grid)
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grid dimensions `(cols, rows)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    #[inline]
    fn cell_of(&self, p: &Point) -> usize {
        let cx = clamp_axis(p.x - self.frame.lo().x, self.cell_size, self.cols);
        let cy = clamp_axis(p.y - self.frame.lo().y, self.cell_size, self.rows);
        cy * self.cols + cx
    }

    /// Inserts a point. Points outside the frame are clamped into the
    /// boundary cells (still retrievable, slightly less efficient).
    pub fn insert(&mut self, p: Point, t: T) {
        assert!(p.is_finite(), "cannot index a non-finite point");
        let cell = self.cell_of(&p);
        self.cells[cell].push((p, t));
        self.len += 1;
    }

    /// Visits every entry whose point lies inside `rect`.
    pub fn query_rect(&self, rect: &Mbr, mut visit: impl FnMut(&Point, &T)) -> QueryStats {
        let mut stats = QueryStats::default();
        let lo_col = clamp_axis(rect.lo().x - self.frame.lo().x, self.cell_size, self.cols);
        let hi_col = clamp_axis(rect.hi().x - self.frame.lo().x, self.cell_size, self.cols);
        let lo_row = clamp_axis(rect.lo().y - self.frame.lo().y, self.cell_size, self.rows);
        let hi_row = clamp_axis(rect.hi().y - self.frame.lo().y, self.cell_size, self.rows);
        for row in lo_row..=hi_row {
            for col in lo_col..=hi_col {
                stats.nodes_visited += 1;
                // pinocchio-lint: allow(panic-path) -- row/col are clamped to [0, rows/cols) above, so the flattened index is always in bounds
                for (p, t) in &self.cells[row * self.cols + col] {
                    stats.entries_tested += 1;
                    if rect.contains_point(p) {
                        stats.matches += 1;
                        visit(p, t);
                    }
                }
            }
        }
        stats
    }

    /// Visits every entry within `radius` of `center` (closed disc).
    /// A negative radius matches nothing (squaring it naively would
    /// silently query the disc of `|radius|` instead).
    pub fn query_circle(
        &self,
        center: &Point,
        radius: f64,
        mut visit: impl FnMut(&Point, &T),
    ) -> QueryStats {
        if radius < 0.0 {
            return QueryStats::default();
        }
        let r_sq = radius * radius;
        let bbox = Mbr::new(
            Point::new(center.x - radius, center.y - radius),
            Point::new(center.x + radius, center.y + radius),
        );
        let mut stats = QueryStats::default();
        let inner = self.query_rect(&bbox, |p, t| {
            if p.euclidean_sq(center) <= r_sq {
                visit(p, t);
            }
        });
        stats.nodes_visited = inner.nodes_visited;
        stats.entries_tested = inner.entries_tested;
        // `matches` from query_rect counts bbox hits; recount disc hits.
        let mut matches = 0;
        self.query_rect(&bbox, |p, _| {
            if p.euclidean_sq(center) <= r_sq {
                matches += 1;
            }
        });
        stats.matches = matches;
        stats
    }
}

/// Maps a continuous offset to a cell index along one axis, clamping
/// into `[0, n)` in the float domain so the single lossy cast is
/// provably in range (out-of-frame points land in the boundary cells).
#[inline]
#[allow(clippy::cast_possible_truncation)] // the clamp above the cast is the whole point of this helper
fn clamp_axis(offset: f64, cell_size: f64, n: usize) -> usize {
    (offset / cell_size)
        .floor()
        .clamp(0.0, n.saturating_sub(1) as f64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, seed: u64) -> Vec<(Point, usize)> {
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| (Point::new(next() * 100.0, next() * 60.0), i))
            .collect()
    }

    #[test]
    fn rect_query_matches_linear_scan() {
        let items = pseudo_points(700, 17);
        let grid = GridIndex::build(items.clone(), 8).unwrap();
        assert_eq!(grid.len(), 700);
        let rect = Mbr::new(Point::new(25.0, 10.0), Point::new(60.0, 40.0));
        let mut got = Vec::new();
        grid.query_rect(&rect, |_, i| got.push(*i));
        got.sort_unstable();
        let mut want: Vec<usize> = items
            .iter()
            .filter(|(p, _)| rect.contains_point(p))
            .map(|(_, i)| *i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn circle_query_matches_linear_scan() {
        let items = pseudo_points(500, 29);
        let grid = GridIndex::build(items.clone(), 8).unwrap();
        let center = Point::new(55.0, 33.0);
        for radius in [0.5, 5.0, 22.0] {
            let mut got = Vec::new();
            grid.query_circle(&center, radius, |_, i| got.push(*i));
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(p, _)| p.euclidean(&center) <= radius)
                .map(|(_, i)| *i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "radius {radius}");
        }
    }

    #[test]
    fn out_of_frame_points_are_clamped_not_lost() {
        let frame = Mbr::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let mut grid = GridIndex::new(frame, 1.0);
        grid.insert(Point::new(-5.0, -5.0), 1usize);
        grid.insert(Point::new(15.0, 15.0), 2usize);
        let mut got = Vec::new();
        grid.query_rect(
            &Mbr::new(Point::new(-10.0, -10.0), Point::new(20.0, 20.0)),
            |_, i| got.push(*i),
        );
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn build_empty_returns_none() {
        assert!(GridIndex::<usize>::build(Vec::new(), 8).is_none());
    }

    #[test]
    fn circle_query_degenerate_inputs() {
        // Negative radius must match nothing — not the |radius| disc.
        let frame = Mbr::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let mut grid = GridIndex::new(frame, 1.0);
        let p = Point::new(5.0, 5.0);
        grid.insert(p, 0usize);
        grid.insert(Point::new(5.5, 5.0), 1usize);
        let stats = grid.query_circle(&p, -1.0, |_, _| panic!("negative radius matched"));
        assert_eq!(stats.matches, 0);
        assert_eq!(stats.nodes_visited, 0);
        // Zero radius: closed disc, so the exact point still matches.
        let mut got = Vec::new();
        grid.query_circle(&p, 0.0, |_, i| got.push(*i));
        assert_eq!(got, vec![0]);
    }

    #[test]
    fn queries_entirely_outside_frame_are_safe() {
        // Query regions beyond the frame clamp into the boundary cells:
        // no panic, no false matches.
        let frame = Mbr::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let mut grid = GridIndex::new(frame, 2.0);
        grid.insert(Point::new(1.0, 1.0), 7usize);
        let rect = Mbr::new(Point::new(50.0, 50.0), Point::new(60.0, 60.0));
        let stats = grid.query_rect(&rect, |_, _| panic!("out-of-frame rect matched"));
        assert_eq!(stats.matches, 0);
        let stats = grid.query_circle(&Point::new(-100.0, -100.0), 3.0, |_, _| {
            panic!("out-of-frame circle matched")
        });
        assert_eq!(stats.matches, 0);
    }

    #[test]
    fn query_stats_count_cells() {
        let items = pseudo_points(900, 31);
        let grid = GridIndex::build(items, 4).unwrap();
        let stats = grid.query_rect(
            &Mbr::new(Point::new(0.0, 0.0), Point::new(5.0, 5.0)),
            |_, _| {},
        );
        assert!(stats.nodes_visited >= 1);
        assert!(stats.entries_tested >= stats.matches);
    }

    #[test]
    #[should_panic(expected = "cell size")]
    fn zero_cell_size_rejected() {
        let frame = Mbr::new(Point::ORIGIN, Point::new(1.0, 1.0));
        let _: GridIndex<usize> = GridIndex::new(frame, 0.0);
    }
}
