//! Command-line interface for the PINOCCHIO framework.
//!
//! ```text
//! pinocchio-cli stats    [--dataset foursquare|gowalla|small] [--seed N]
//! pinocchio-cli solve    [--dataset ...] [--algo na|pin|pin-vo|pin-vo*|pin-join]
//!                        [--tau T] [--candidates M] [--seed N] [--top K]
//!                        [--threads N]
//! pinocchio-cli approx   [--dataset ...] [--tau T] [--candidates M]
//!                        [--epsilon E] [--delta D] [--seed N]
//! pinocchio-cli generate --out DIR [--dataset ...] [--seed N]
//! pinocchio-cli serve    [--dataset ...] [--tau T] [--candidates M] [--seed N]
//!                        [--addr HOST:PORT] [--queue N] [--batch N]
//!                        [--workers N] [--threads N] [--shards N]
//! pinocchio-cli replay   [--dataset ...] [--tau T] [--candidates M] [--seed N]
//!                        [--rounds N] [--every N]
//! ```
//!
//! `--dataset small` (the default) builds a fast 300-user world;
//! `foursquare` / `gowalla` build the full paper-calibrated datasets.
//!
//! `serve` runs the epoch-snapshot query service over the dataset until
//! a client sends the `shutdown` wire command. `replay` streams the
//! dataset's positions through the *same* ingest codepath in timestamp
//! order, printing the evolving optimum — what the server's writer
//! thread would compute for the identical stream.

use pinocchio::data::{
    io, sample_candidate_group, DatasetStats, GeneratorConfig, SyntheticGenerator,
};
use pinocchio::prelude::*;
use pinocchio::serve::{serve, ServerConfig, UpdateOp, World};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  pinocchio-cli stats    [--dataset foursquare|gowalla|small] [--seed N]\n  \
         pinocchio-cli solve    [--dataset ...] [--algo na|pin|pin-vo|pin-vo*|pin-join] [--tau T] [--candidates M] [--seed N] [--top K] [--threads N]\n  \
         pinocchio-cli approx   [--dataset ...] [--tau T] [--candidates M] [--epsilon E] [--delta D] [--seed N]\n  \
         pinocchio-cli generate --out DIR [--dataset ...] [--seed N]\n  \
         pinocchio-cli serve    [--dataset ...] [--tau T] [--candidates M] [--seed N] [--addr HOST:PORT] [--queue N] [--batch N] [--workers N] [--threads N] [--shards N]\n  \
         pinocchio-cli replay   [--dataset ...] [--tau T] [--candidates M] [--seed N] [--rounds N] [--every N]"
    );
    ExitCode::from(2)
}

/// Parses `--key` as `T`, defaulting when absent.
fn flag_or<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    flags
        .get(key)
        .map(|s| s.parse().map_err(|e| format!("bad --{key}: {e}")))
        .unwrap_or(Ok(default))
}

fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag.strip_prefix("--")?;
        let value = it.next()?;
        flags.insert(key.to_string(), value.clone());
    }
    Some(flags)
}

fn build_dataset(flags: &HashMap<String, String>) -> Result<pinocchio::data::Dataset, String> {
    let seed: Option<u64> = flags
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("bad --seed: {e}")))
        .transpose()?;
    let mut config = match flags.get("dataset").map(String::as_str).unwrap_or("small") {
        "foursquare" => GeneratorConfig::foursquare_like(),
        "gowalla" => GeneratorConfig::gowalla_like(),
        "small" => GeneratorConfig::small(300, 1),
        other => return Err(format!("unknown dataset '{other}'")),
    };
    if let Some(seed) = seed {
        config = config.with_seed(seed);
    }
    Ok(SyntheticGenerator::new(config).generate())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage();
    };
    let Some(flags) = parse_flags(rest) else {
        return usage();
    };

    let dataset = match build_dataset(&flags) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    match command.as_str() {
        "stats" => {
            println!("{}", DatasetStats::of(&dataset));
            ExitCode::SUCCESS
        }
        "solve" => {
            let tau: f64 = match flags.get("tau").map(|s| s.parse()).unwrap_or(Ok(0.7)) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: bad --tau: {e}");
                    return ExitCode::from(2);
                }
            };
            let m: usize = match flags
                .get("candidates")
                .map(|s| s.parse())
                .unwrap_or(Ok(200))
            {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("error: bad --candidates: {e}");
                    return ExitCode::from(2);
                }
            };
            let algorithm = match flags.get("algo").map(String::as_str).unwrap_or("pin-vo") {
                "na" => Algorithm::Naive,
                "pin" => Algorithm::Pinocchio,
                "pin-vo" => Algorithm::PinocchioVo,
                "pin-vo*" => Algorithm::PinocchioVoStar,
                "pin-join" => Algorithm::PinocchioJoin,
                other => {
                    eprintln!("error: unknown algorithm '{other}'");
                    return ExitCode::from(2);
                }
            };
            let (_, candidates) =
                sample_candidate_group(&dataset, m.min(dataset.venues().len()), 1);
            let problem = match PrimeLs::builder()
                .objects(dataset.objects().to_vec())
                .candidates(candidates)
                .probability_function(PowerLawPf::paper_default())
                .tau(tau)
                .build()
            {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            if let Some(top) = flags.get("top") {
                let k: usize = match top.parse() {
                    Ok(k) => k,
                    Err(e) => {
                        eprintln!("error: bad --top: {e}");
                        return ExitCode::from(2);
                    }
                };
                for (rank, entry) in pinocchio::core::solve_top_k(&problem, k).iter().enumerate() {
                    println!(
                        "{:3}. candidate #{} at {} influence {}",
                        rank + 1,
                        entry.candidate,
                        entry.location,
                        entry.influence
                    );
                }
                return ExitCode::SUCCESS;
            }
            let threads: usize = match flags.get("threads").map(|s| s.parse()).unwrap_or(Ok(1)) {
                Ok(0) => {
                    eprintln!("error: --threads must be at least 1");
                    return ExitCode::from(2);
                }
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: bad --threads: {e}");
                    return ExitCode::from(2);
                }
            };
            let r = if threads > 1 {
                use pinocchio::core::{join, parallel};
                match algorithm {
                    Algorithm::Naive => parallel::solve_naive(&problem, threads),
                    Algorithm::Pinocchio => parallel::solve_pinocchio(&problem, threads),
                    Algorithm::PinocchioVo => parallel::solve_vo(&problem, threads),
                    Algorithm::PinocchioJoin => join::solve_par(&problem, threads),
                    Algorithm::PinocchioVoStar => {
                        eprintln!("error: --threads supports na, pin, pin-vo and pin-join (pin-vo* has no parallel driver)");
                        return ExitCode::from(2);
                    }
                }
            } else {
                problem.solve(algorithm)
            };
            println!("algorithm        {}", r.algorithm);
            println!(
                "best candidate   #{} at {}",
                r.best_candidate, r.best_location
            );
            println!("max influence    {}", r.max_influence);
            println!("pairs validated  {}", r.stats.validated_pairs);
            println!("pairs pruned     {}", r.stats.pruned_pairs());
            println!("positions probed {}", r.stats.positions_evaluated);
            println!("elapsed          {:.3?}", r.elapsed);
            ExitCode::SUCCESS
        }
        "approx" => {
            let get = |key: &str, default: f64| -> Result<f64, String> {
                flags
                    .get(key)
                    .map(|s| s.parse().map_err(|e| format!("bad --{key}: {e}")))
                    .unwrap_or(Ok(default))
            };
            let (tau, epsilon, delta) =
                match (get("tau", 0.7), get("epsilon", 0.05), get("delta", 0.01)) {
                    (Ok(t), Ok(e), Ok(d)) => (t, e, d),
                    (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => {
                        eprintln!("error: {e}");
                        return ExitCode::from(2);
                    }
                };
            let m: usize = match flags
                .get("candidates")
                .map(|s| s.parse())
                .unwrap_or(Ok(200))
            {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("error: bad --candidates: {e}");
                    return ExitCode::from(2);
                }
            };
            let (_, candidates) =
                sample_candidate_group(&dataset, m.min(dataset.venues().len()), 1);
            let problem = match PrimeLs::builder()
                .objects(dataset.objects().to_vec())
                .candidates(candidates)
                .probability_function(PowerLawPf::paper_default())
                .tau(tau)
                .build()
            {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            let r = pinocchio::core::solve_approx(
                &problem,
                pinocchio::core::ApproxConfig::new(epsilon, delta, 1),
            );
            println!(
                "best candidate    #{} at {}",
                r.best_candidate, r.best_location
            );
            println!("est. influence    {}", r.estimated_influence);
            println!(
                "sample size       {} of {}",
                r.sample_size,
                dataset.objects().len()
            );
            println!("exact             {}", r.exact);
            ExitCode::SUCCESS
        }
        "generate" => {
            let Some(out) = flags.get("out") else {
                eprintln!("error: generate needs --out DIR");
                return ExitCode::from(2);
            };
            let dir = PathBuf::from(out);
            if let Err(e) = std::fs::create_dir_all(&dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            let checkins = dir.join("checkins.csv");
            let venues = dir.join("venues.csv");
            if let Err(e) = io::save_checkins(&dataset, &checkins)
                .and_then(|_| io::save_venues(&dataset, &venues))
            {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {} check-ins to {} and {} venues to {}",
                dataset.total_checkins(),
                checkins.display(),
                dataset.venues().len(),
                venues.display()
            );
            ExitCode::SUCCESS
        }
        "serve" => {
            let parsed = (|| -> Result<(f64, usize, ServerConfig), String> {
                let tau = flag_or(&flags, "tau", 0.7)?;
                let m = flag_or(&flags, "candidates", 200usize)?;
                let config = ServerConfig {
                    addr: flags
                        .get("addr")
                        .cloned()
                        .unwrap_or_else(|| "127.0.0.1:0".to_string()),
                    queue_capacity: flag_or(&flags, "queue", 256usize)?,
                    batch_max: flag_or(&flags, "batch", 16usize)?,
                    workers: flag_or(&flags, "workers", 2usize)?,
                    solve_threads: flag_or(&flags, "threads", 2usize)?,
                    shards: flag_or(&flags, "shards", 1usize)?,
                    ..ServerConfig::default()
                };
                Ok((tau, m, config))
            })();
            let (tau, m, config) = match parsed {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            let (_, candidates) =
                sample_candidate_group(&dataset, m.min(dataset.venues().len()), 1);
            let world = match World::from_parts(dataset.objects().to_vec(), candidates, tau) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            println!(
                "serving {} objects x {} candidates at tau={tau} across {} shard(s)",
                world.object_count(),
                world.candidate_count(),
                config.shards
            );
            let handle = match serve(world, config) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("error: cannot bind: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("listening on {}", handle.addr());
            println!("send {{\"v\":1,\"op\":\"shutdown\"}} to stop");
            let stats = handle.join();
            println!(
                "drained: {} lines, {} queries, {} updates, {} epochs, {} shed",
                stats.lines_received,
                stats.queries_completed(),
                stats.updates_applied,
                stats.epochs_published,
                stats.shed
            );
            ExitCode::SUCCESS
        }
        "replay" => {
            let parsed = (|| -> Result<(f64, usize, usize, usize), String> {
                Ok((
                    flag_or(&flags, "tau", 0.7)?,
                    flag_or(&flags, "candidates", 50usize)?,
                    flag_or(&flags, "rounds", usize::MAX)?,
                    flag_or(&flags, "every", 1usize)?,
                ))
            })();
            let (tau, m, rounds, every) = match parsed {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            };
            let (_, candidates) =
                sample_candidate_group(&dataset, m.min(dataset.venues().len()), 1);
            // The replay drives the exact codepath the server's writer
            // thread runs: every event goes through `World::apply`.
            let mut world = World::new(tau);
            for (j, location) in candidates.into_iter().enumerate() {
                if let Err(e) = world.apply(&UpdateOp::InsertCandidate {
                    candidate: j as u64,
                    location,
                }) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            let objects = dataset.objects();
            let horizon = objects
                .iter()
                .map(|o| o.positions().len())
                .max()
                .unwrap_or(0)
                .min(rounds.max(1));
            let mut events = 0u64;
            let report = |world: &World, t: usize, events: u64| {
                match world.best() {
                    Ok(Some((candidate, location, influence))) => println!(
                        "t={t:4}  events={events:7}  best=#{candidate} at {location} influence={influence}"
                    ),
                    Ok(None) => println!("t={t:4}  events={events:7}  best=<none>"),
                    Err(e) => println!("t={t:4}  events={events:7}  error: {e}"),
                }
            };
            // t = 0: each object appears at its first observed position;
            // t = k: the k-th position streams in, in timestamp order.
            for t in 0..horizon {
                for object in objects {
                    let Some(&position) = object.positions().get(t) else {
                        continue;
                    };
                    let op = if t == 0 {
                        UpdateOp::InsertObject {
                            object: object.id(),
                            positions: vec![position],
                        }
                    } else {
                        UpdateOp::AppendPosition {
                            object: object.id(),
                            position,
                        }
                    };
                    if let Err(e) = world.apply(&op) {
                        eprintln!("error at t={t}: {e}");
                        return ExitCode::FAILURE;
                    }
                    events += 1;
                }
                if t % every.max(1) == 0 || t + 1 == horizon {
                    report(&world, t, events);
                }
            }
            println!(
                "replayed {events} events over {horizon} rounds: {} objects, {} candidates",
                world.object_count(),
                world.candidate_count()
            );
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
