//! Block-bounded influence evaluation over a structure-of-arrays
//! position layout.
//!
//! The scalar evaluator ([`crate::CumulativeProbability::influences`])
//! pays one distance and one `PF` call per position. This module bounds
//! whole *blocks* of positions at once: for a block of `B` positions
//! whose MBR is `R` and a candidate `c`, every position `p` of the block
//! satisfies `minDist(c, R) ≤ dist(c, p) ≤ maxDist(c, R)`, so by the
//! monotonicity of `PF` the block's contribution to the non-influence
//! product `∏ (1 − PF(dist(c, p)))` is bounded by
//!
//! ```text
//! B · ln(1 − PF(minDist(c, R)))  ≤  Σ ln(1 − PF(dist(c, p)))  ≤  B · ln(1 − PF(maxDist(c, R)))
//! ```
//!
//! — the same `minDist`/`maxDist` argument the paper's Theorems 1–2 make
//! at whole-object granularity, applied within the object (DESIGN.md
//! §10 derives this in full). Equivalently, in product space,
//!
//! ```text
//! (1 − PF(minDist(c, R)))^B  ≤  ∏ (1 − PF(dist(c, p)))  ≤  (1 − PF(maxDist(c, R)))^B
//! ```
//!
//! which is the form the kernel actually evaluates: `powi` is a handful
//! of multiplications (repeated squaring), where the log form costs a
//! `ln_1p` per bound — too expensive for a hot loop whose whole point
//! is to beat a multiply-per-position scan. Underflow, the usual reason
//! to prefer log space, is harmless here: a product bound that
//! underflows towards zero only ever *relaxes* a decision into exact
//! refinement (or certifies influence with astronomical margin), never
//! flips one. The object is declared `influenced` / `not influenced`
//! as soon as the accumulated bounds clear `1 − τ` with a safety
//! margin, and only the straddling blocks are *refined* with an exact
//! squared-distance scan over the coordinate rows.
//!
//! ## Exactness
//!
//! Bound decisions fire only when they clear the threshold by a guard
//! band that dominates every floating-point slop in the bound
//! computation, so a bound-decided verdict always equals the exact
//! verdict. When no bound decides, the kernel refines block after block
//! with the *same multiplication sequence* the scalar path executes
//! (storage order, `non_influence *= 1 − PF(dist)`), so a fully refined
//! evaluation returns the bit-identical product and verdict of
//! [`crate::CumulativeProbability::influences`]. The cross-kernel
//! property tests in `pinocchio-core` enforce this end to end.

use crate::cumulative::CumulativeProbability;
use crate::pf::ProbabilityFunction;
use pinocchio_geo::{Euclidean, Mbr, Point};

/// Relative guard band for bound decisions, in product space.
///
/// Bound products carry relative rounding on the order of a few ulps
/// per factor (the distance, `PF`, `powi`, the running multiply), and
/// the scalar product they must agree with carries the same; per-object
/// position counts keep the accumulated error far below `1e-9`.
/// Verdicts inside the guard band are resolved by exact refinement,
/// never by the bounds.
const GUARD: f64 = 1e-9;

/// Absolute guard floor. The scalar verdict is `1 − product ≥ τ`, and
/// the subtraction from `1.0` rounds at `ulp(1) ≈ 2.2e-16` no matter
/// how small `1 − τ` is; an absolute `1e-15` keeps bound decisions
/// sound even when the relative band `(1 − τ)·GUARD` degenerates
/// (τ → 1, where it also correctly disables the influenced-by-bound
/// exit entirely: `thr_lo < 0` can never fire).
const GUARD_ABS: f64 = 1e-15;

/// Reusable scratch for [`CumulativeProbability::influences_blocked`]:
/// per-block bound factors, rewritten in place into suffix products
/// between the bounding and refinement passes. One instance per
/// evaluation thread amortises the allocation across every pair the
/// thread validates.
#[derive(Debug, Clone, Default)]
pub struct BlockScratch {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

/// A borrowed view of one object's positions in blocked
/// structure-of-arrays form (see `pinocchio_data::PositionArena`).
///
/// Block `b` covers positions `b·block_size .. min((b+1)·block_size, n)`
/// and `mbrs[b]` is the MBR of exactly those positions.
#[derive(Debug, Clone, Copy)]
pub struct SoaBlocks<'a> {
    xs: &'a [f64],
    ys: &'a [f64],
    mbrs: &'a [Mbr],
    block_size: usize,
    /// MBR of the whole object (union of the block MBRs); `None` only
    /// for an empty view. Lets kernels bound the entire trajectory from
    /// two distances before walking any block.
    object_mbr: Option<Mbr>,
}

impl<'a> SoaBlocks<'a> {
    /// Creates a view over coordinate rows and per-block MBRs, deriving
    /// the object-level MBR as the union of the block MBRs.
    ///
    /// # Panics
    /// Panics when the rows disagree in length, `block_size` is zero, or
    /// the MBR count does not match `xs.len().div_ceil(block_size)`.
    pub fn new(xs: &'a [f64], ys: &'a [f64], mbrs: &'a [Mbr], block_size: usize) -> Self {
        let object_mbr = mbrs.iter().copied().reduce(|a, b| a.union(&b));
        Self::build(xs, ys, mbrs, block_size, object_mbr)
    }

    /// Creates a view with a precomputed object-level MBR (the arena
    /// stores one per object), skipping the union fold in [`Self::new`].
    ///
    /// # Panics
    /// As [`Self::new`]; additionally debug-asserts that `object_mbr`
    /// contains every block MBR, the invariant the kernels' object-level
    /// bounds rely on.
    pub fn with_object_mbr(
        xs: &'a [f64],
        ys: &'a [f64],
        mbrs: &'a [Mbr],
        block_size: usize,
        object_mbr: Mbr,
    ) -> Self {
        debug_assert!(
            mbrs.iter().all(|m| object_mbr.contains_mbr(m)),
            "object MBR must cover every block MBR"
        );
        Self::build(xs, ys, mbrs, block_size, Some(object_mbr))
    }

    fn build(
        xs: &'a [f64],
        ys: &'a [f64],
        mbrs: &'a [Mbr],
        block_size: usize,
        object_mbr: Option<Mbr>,
    ) -> Self {
        assert_eq!(xs.len(), ys.len(), "coordinate rows must agree");
        assert!(block_size > 0, "block size must be positive");
        assert_eq!(
            mbrs.len(),
            xs.len().div_ceil(block_size),
            "one MBR per block required"
        );
        SoaBlocks {
            xs,
            ys,
            mbrs,
            block_size,
            object_mbr,
        }
    }

    /// Number of positions.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the view holds no positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Number of blocks.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.mbrs.len()
    }

    /// The position index range of block `b`.
    #[inline]
    pub(crate) fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        let lo = b * self.block_size;
        lo..((b + 1) * self.block_size).min(self.xs.len())
    }

    /// The x-coordinate row (crate-internal: the log-domain kernel
    /// shares this view's layout).
    #[inline]
    pub(crate) fn xs(&self) -> &'a [f64] {
        self.xs
    }

    /// The y-coordinate row.
    #[inline]
    pub(crate) fn ys(&self) -> &'a [f64] {
        self.ys
    }

    /// The per-block MBRs.
    #[inline]
    pub(crate) fn mbrs(&self) -> &'a [Mbr] {
        self.mbrs
    }

    /// The object-level MBR (`None` only for an empty view).
    #[inline]
    pub(crate) fn object_mbr(&self) -> Option<&Mbr> {
        self.object_mbr.as_ref()
    }
}

/// Outcome of a blocked influence evaluation.
///
/// The position accounting is total: `positions_evaluated +
/// positions_skipped` always equals the number of positions in the
/// view, which is what keeps the solver-level stats invariant
/// (`skipped + evaluated = total`) checkable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockedOutcome {
    /// Whether the candidate influences the object (`Pr_c(O) ≥ τ`) —
    /// always identical to the scalar verdict.
    pub influenced: bool,
    /// Positions whose probability was evaluated exactly (refinement).
    pub positions_evaluated: usize,
    /// Positions decided purely through their block's bounds.
    pub positions_skipped: usize,
    /// Blocks never refined (bounded only).
    pub blocks_pruned: usize,
    /// Upper bound on the full non-influence product
    /// `∏ (1 − PF(dist))`; exact (and bit-identical to the scalar
    /// product) when every block was refined. This is the same contract
    /// [`crate::EarlyStopOutcome::non_influence_product`] documents for
    /// the scalar early exit, and it is debug-asserted on every return.
    pub non_influence_product: f64,
}

impl<P: ProbabilityFunction> CumulativeProbability<P, Euclidean> {
    // Bound factor conventions (PF is monotone decreasing): the block's
    // nearest distance gives the largest per-position probability and so
    // the smallest factor — `f_lo = (1 − PF(minDist))^len` — while the
    // farthest distance gives `f_hi = (1 − PF(maxDist))^len`. The
    // probabilities are clamped into [0, 1] because PF implementations
    // may overshoot 1 by an ulp, which would make `1 − p` negative and
    // the `powi` bound sign-flipping nonsense. `powi` lowers to repeated
    // squaring — four multiplies for a 16-position block, versus a
    // `ln_1p` call in log space.

    /// Exact scalar product of a refined block, multiplied into
    /// `product` with the same *multiplication sequence* the scalar
    /// evaluator uses (storage order, one multiply per position) so a
    /// full refinement reproduces its result bit for bit.
    ///
    /// The factors are materialised into a fixed-size buffer first and
    /// multiplied afterwards: each factor is computed independently of
    /// the running product, so the branch-free distance/`PF` lane can be
    /// pipelined (or vectorised) by the compiler instead of serialising
    /// behind the product's multiply chain. The factor *values* and the
    /// multiply *order* are unchanged, so the result is still
    /// bit-identical to the fused loop.
    // pinocchio-hot: inner distance/PF lane of every exact validation
    #[inline]
    pub(crate) fn refine_block(
        &self,
        c: &Point,
        blocks: &SoaBlocks<'_>,
        b: usize,
        product: &mut f64,
    ) {
        const LANE: usize = 16;
        let range = blocks.block_range(b);
        let xs = &blocks.xs[range.clone()];
        let ys = &blocks.ys[range];
        let mut cx = xs.chunks_exact(LANE);
        let mut cy = ys.chunks_exact(LANE);
        for (row_x, row_y) in (&mut cx).zip(&mut cy) {
            let mut f = [0.0f64; LANE];
            for j in 0..LANE {
                let dx = row_x[j] - c.x;
                let dy = row_y[j] - c.y;
                f[j] = 1.0 - self.pf().prob((dx * dx + dy * dy).sqrt());
            }
            for factor in f {
                *product *= factor;
            }
        }
        for (&x, &y) in cx.remainder().iter().zip(cy.remainder()) {
            let dx = x - c.x;
            let dy = y - c.y;
            *product *= 1.0 - self.pf().prob((dx * dx + dy * dy).sqrt());
        }
    }

    /// Influence test over a blocked structure-of-arrays view.
    ///
    /// The verdict is always identical to
    /// [`Self::influences`] on the same positions; only the amount of
    /// work differs. See the module docs for the bounding argument and
    /// the exactness contract.
    // pinocchio-hot: per-(candidate, object) bounding kernel of the blocked solver
    pub fn influences_blocked(
        &self,
        candidate: &Point,
        blocks: &SoaBlocks<'_>,
        tau: f64,
        scratch: &mut BlockScratch,
    ) -> BlockedOutcome {
        let n = blocks.len();
        let nblocks = blocks.block_count();
        // Influenced ⇔ product ≤ 1 − τ. Bound decisions must clear the
        // threshold by the guard band; anything closer refines. With
        // τ ≥ 1 the influenced side (`thr_lo < 0`) can never fire and
        // the not-influenced side fires for any positive lower bound —
        // exactly the scalar semantics (a product > 0 cannot reach
        // cumulative probability 1).
        let thr = 1.0 - tau;
        let thr_lo = thr * (1.0 - GUARD) - GUARD_ABS;
        let thr_hi = thr * (1.0 + GUARD) + GUARD_ABS;

        // ---- bounding pass, upper side -------------------------------
        // Running upper product bound over the blocks seen so far, with
        // the per-block factors saved for the refinement pass. Factors
        // are ≤ 1, so unseen blocks only push the true product further
        // down: once `hi` alone clears the threshold the object is
        // influenced no matter what the remaining blocks hold (the
        // block-level analogue of the Lemma 4 early exit). Influenced
        // pairs — the common case in bound-driven validation — exit here
        // having paid for one distance and one `PF` call per block, so
        // the lower-bound side is deliberately deferred.
        scratch.hi.clear();
        let mut hi_all = 1.0f64;
        for (b, mbr) in blocks.mbrs.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            let len = blocks.block_range(b).len() as i32; // pinocchio-lint: allow(cast-truncation) -- a block holds at most BLOCK_SIZE = 16 positions
            let p_lo = self.pf().prob(mbr.max_dist(candidate)).clamp(0.0, 1.0);
            let f_hi = (1.0 - p_lo).powi(len);
            scratch.hi.push(f_hi);
            hi_all *= f_hi;
            if hi_all < thr_lo {
                return self.bounded_outcome(candidate, blocks, tau, true, hi_all);
            }
        }

        // ---- bounding pass, lower side -------------------------------
        // Only pairs the upper bound could not decide pay for the
        // nearest-distance side. The total lower bound decides the far
        // (never-influenced) pairs without touching a single position.
        scratch.lo.clear();
        let mut lo_all = 1.0f64;
        for (b, mbr) in blocks.mbrs.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            let len = blocks.block_range(b).len() as i32; // pinocchio-lint: allow(cast-truncation) -- a block holds at most BLOCK_SIZE = 16 positions
            let p_hi = self.pf().prob(mbr.min_dist(candidate)).clamp(0.0, 1.0);
            let f_lo = (1.0 - p_hi).powi(len);
            scratch.lo.push(f_lo);
            lo_all *= f_lo;
        }
        if lo_all > thr_hi {
            return self.bounded_outcome(candidate, blocks, tau, false, hi_all);
        }

        // ---- refinement pass -----------------------------------------
        // The total straddles the threshold: replace block bounds with
        // exact contributions, in storage order, until the combination
        // of exact-so-far and still-bounded-remainder decides. The
        // remainder bounds are inclusive suffix products, computed in
        // place over the saved factors (`scratch.lo[b] = ∏_{i≥b} f_lo[i]`
        // and likewise for `hi`) — no per-block bound is ever computed
        // twice.
        let mut acc = 1.0f64;
        for f in scratch.lo.iter_mut().rev() {
            acc *= *f;
            *f = acc;
        }
        let mut acc = 1.0f64;
        for f in scratch.hi.iter_mut().rev() {
            acc *= *f;
            *f = acc;
        }

        let mut product = 1.0f64;
        let mut evaluated = 0usize;
        for b in 0..nblocks {
            let upper = product * scratch.hi[b];
            if upper < thr_lo {
                return self.checked(
                    candidate,
                    blocks,
                    tau,
                    BlockedOutcome {
                        influenced: true,
                        positions_evaluated: evaluated,
                        positions_skipped: n - evaluated,
                        blocks_pruned: nblocks - b,
                        non_influence_product: upper.min(1.0),
                    },
                );
            }
            if product * scratch.lo[b] > thr_hi {
                return self.checked(
                    candidate,
                    blocks,
                    tau,
                    BlockedOutcome {
                        influenced: false,
                        positions_evaluated: evaluated,
                        positions_skipped: n - evaluated,
                        blocks_pruned: nblocks - b,
                        non_influence_product: upper.min(1.0),
                    },
                );
            }
            self.refine_block(candidate, blocks, b, &mut product);
            evaluated += blocks.block_range(b).len();
            // Exact mid-refinement influenced exit: the scalar early
            // stop's own comparison (`non_influence <= 1 − τ`) applied
            // to the running prefix product. No guard band is needed —
            // every remaining factor is ≤ 1, so the full product can
            // only be smaller and the scalar verdict follows by the
            // same monotone argument as `influences_early_stop`.
            if product <= thr {
                return self.checked(
                    candidate,
                    blocks,
                    tau,
                    BlockedOutcome {
                        influenced: true,
                        positions_evaluated: evaluated,
                        positions_skipped: n - evaluated,
                        blocks_pruned: nblocks - b - 1,
                        non_influence_product: product,
                    },
                );
            }
        }

        // Every block refined: the exact scalar comparison, bit-identical
        // to `influences` (same factors, same order, same final test).
        self.checked(
            candidate,
            blocks,
            tau,
            BlockedOutcome {
                influenced: 1.0 - product >= tau,
                positions_evaluated: evaluated,
                positions_skipped: n - evaluated,
                blocks_pruned: 0,
                non_influence_product: product,
            },
        )
    }

    /// Outcome for a verdict reached purely from block bounds.
    fn bounded_outcome(
        &self,
        candidate: &Point,
        blocks: &SoaBlocks<'_>,
        tau: f64,
        influenced: bool,
        upper: f64,
    ) -> BlockedOutcome {
        self.checked(
            candidate,
            blocks,
            tau,
            BlockedOutcome {
                influenced,
                positions_evaluated: 0,
                positions_skipped: blocks.len(),
                blocks_pruned: blocks.block_count(),
                non_influence_product: upper.min(1.0),
            },
        )
    }

    /// Debug-mode contract check: the reported product must be an upper
    /// bound on the full non-influence product, and the verdict must
    /// match the exhaustive scalar verdict — the same promise
    /// [`crate::EarlyStopOutcome::non_influence_product`] makes for the
    /// scalar early exit. Release builds return the outcome untouched.
    #[inline]
    fn checked(
        &self,
        candidate: &Point,
        blocks: &SoaBlocks<'_>,
        tau: f64,
        outcome: BlockedOutcome,
    ) -> BlockedOutcome {
        #[cfg(debug_assertions)]
        {
            let mut full = 1.0f64;
            for b in 0..blocks.block_count() {
                self.refine_block(candidate, blocks, b, &mut full);
            }
            debug_assert!(
                outcome.non_influence_product >= full - 1e-12,
                "reported product {} is not an upper bound on the full product {}",
                outcome.non_influence_product,
                full
            );
            debug_assert_eq!(
                outcome.influenced,
                1.0 - full >= tau,
                "blocked verdict diverges from the scalar verdict (tau = {tau})"
            );
        }
        let _ = (candidate, blocks, tau);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pf::PowerLawPf;

    fn soa(points: &[(f64, f64)], block_size: usize) -> (Vec<f64>, Vec<f64>, Vec<Mbr>) {
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        let mbrs = xs
            .chunks(block_size)
            .zip(ys.chunks(block_size))
            .map(|(cx, cy)| {
                let pts: Vec<Point> = cx.iter().zip(cy).map(|(&x, &y)| Point::new(x, y)).collect();
                Mbr::from_points(&pts).unwrap()
            })
            .collect();
        (xs, ys, mbrs)
    }

    fn eval() -> CumulativeProbability<PowerLawPf, Euclidean> {
        CumulativeProbability::new(PowerLawPf::paper_default(), Euclidean)
    }

    fn grid(n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| ((i % 7) as f64 * 0.8, (i / 7) as f64 * 0.6))
            .collect()
    }

    #[test]
    fn verdict_matches_scalar_everywhere() {
        let e = eval();
        let mut scratch = BlockScratch::default();
        for n in [1usize, 3, 16, 17, 50, 100] {
            let pts = grid(n);
            let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
            let (xs, ys, mbrs) = soa(&pts, 16);
            let view = SoaBlocks::new(&xs, &ys, &mbrs, 16);
            for tau in [0.1, 0.3, 0.5, 0.7, 0.9] {
                for cx in [-50.0, -3.0, 0.0, 2.5, 40.0, 400.0] {
                    let c = Point::new(cx, 1.0);
                    let scalar = e.influences(&c, &points, tau);
                    let blocked = e.influences_blocked(&c, &view, tau, &mut scratch);
                    assert_eq!(blocked.influenced, scalar, "n={n} tau={tau} cx={cx}");
                    assert_eq!(
                        blocked.positions_evaluated + blocked.positions_skipped,
                        n,
                        "position accounting must be total"
                    );
                }
            }
        }
    }

    #[test]
    fn far_candidate_prunes_every_block() {
        let pts = grid(64);
        let (xs, ys, mbrs) = soa(&pts, 16);
        let view = SoaBlocks::new(&xs, &ys, &mbrs, 16);
        let out = eval().influences_blocked(
            &Point::new(1000.0, 1000.0),
            &view,
            0.7,
            &mut BlockScratch::default(),
        );
        assert!(!out.influenced);
        assert_eq!(out.positions_evaluated, 0);
        assert_eq!(out.positions_skipped, 64);
        assert_eq!(out.blocks_pruned, 4);
    }

    #[test]
    fn near_candidate_decides_from_the_first_blocks() {
        // Candidate inside the first block's MBR with a lax threshold:
        // the upper bound of the early blocks already certifies
        // influence, so later blocks are never bounded or refined.
        let pts = grid(160);
        let (xs, ys, mbrs) = soa(&pts, 16);
        let view = SoaBlocks::new(&xs, &ys, &mbrs, 16);
        let out = eval().influences_blocked(
            &Point::new(0.8, 0.3),
            &view,
            0.3,
            &mut BlockScratch::default(),
        );
        assert!(out.influenced);
        assert_eq!(out.positions_evaluated, 0, "bounds alone should decide");
        assert_eq!(out.positions_skipped, 160);
    }

    #[test]
    fn fully_refined_product_is_bit_identical_to_scalar() {
        let e = eval();
        let mut scratch = BlockScratch::default();
        // A candidate at a middling distance with a near-threshold τ is
        // the worst case: bounds cannot decide, every block refines.
        let pts = grid(40);
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let (xs, ys, mbrs) = soa(&pts, 16);
        let view = SoaBlocks::new(&xs, &ys, &mbrs, 16);
        let c = Point::new(6.0, 2.0);
        // The scalar evaluator's running product, reproduced factor for
        // factor (this is exactly the loop inside `cumulative`).
        let mut scalar_product = 1.0_f64;
        for p in &points {
            scalar_product *= 1.0 - e.position_probability(&c, p);
        }
        let tau = e.cumulative(&c, &points); // on the boundary: must refine
        let out = e.influences_blocked(&c, &view, tau, &mut scratch);
        assert_eq!(out.positions_evaluated, 40);
        assert_eq!(out.blocks_pruned, 0);
        assert_eq!(
            out.non_influence_product.to_bits(),
            scalar_product.to_bits(),
            "full refinement must reproduce the scalar product bit for bit"
        );
        assert_eq!(out.influenced, e.influences(&c, &points, tau));
    }

    #[test]
    fn product_is_an_upper_bound_in_every_mode() {
        let e = eval();
        let mut scratch = BlockScratch::default();
        let pts = grid(80);
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let (xs, ys, mbrs) = soa(&pts, 16);
        let view = SoaBlocks::new(&xs, &ys, &mbrs, 16);
        for tau in [0.2, 0.5, 0.8] {
            for cx in [-20.0, 0.5, 3.0, 9.0, 200.0] {
                let c = Point::new(cx, 0.4);
                let out = e.influences_blocked(&c, &view, tau, &mut scratch);
                let full: f64 = points
                    .iter()
                    .map(|p| 1.0 - e.position_probability(&c, p))
                    .product();
                assert!(
                    out.non_influence_product >= full - 1e-12,
                    "tau={tau} cx={cx}: {} < {}",
                    out.non_influence_product,
                    full
                );
            }
        }
    }

    #[test]
    fn block_size_one_degenerates_to_per_position_bounds() {
        let mut scratch = BlockScratch::default();
        let pts = grid(10);
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let (xs, ys, mbrs) = soa(&pts, 1);
        let view = SoaBlocks::new(&xs, &ys, &mbrs, 1);
        let e = eval();
        for tau in [0.3, 0.7] {
            let c = Point::new(2.0, 1.0);
            assert_eq!(
                e.influences_blocked(&c, &view, tau, &mut scratch)
                    .influenced,
                e.influences(&c, &points, tau)
            );
        }
    }

    #[test]
    #[should_panic(expected = "one MBR per block")]
    fn mismatched_mbr_count_rejected() {
        let (xs, ys, _) = soa(&grid(20), 16);
        let _ = SoaBlocks::new(&xs, &ys, &[], 16);
    }

    #[test]
    #[should_panic(expected = "coordinate rows")]
    fn mismatched_rows_rejected() {
        let (xs, _, mbrs) = soa(&grid(20), 16);
        let _ = SoaBlocks::new(&xs, &[0.0], &mbrs, 16);
    }
}
