//! Property-based tests of the baseline semantics.

use pinocchio_baselines::{brnn_star, min_dist, range_baseline, rank_descending, RangeConfig};
use pinocchio_data::MovingObject;
use pinocchio_geo::Point;
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0f64..50.0, 0.0f64..50.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_objects() -> impl Strategy<Value = Vec<MovingObject>> {
    prop::collection::vec(prop::collection::vec(arb_point(), 1..15), 1..20).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, ps)| MovingObject::new(i as u64, ps))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every object casts exactly one BRNN* vote.
    #[test]
    fn brnn_votes_sum_to_object_count(
        objects in arb_objects(),
        candidates in prop::collection::vec(arb_point(), 1..15),
    ) {
        let votes = brnn_star(&objects, &candidates);
        prop_assert_eq!(
            votes.iter().sum::<u32>() as usize,
            objects.len()
        );
    }

    /// RANGE influence grows with the range and shrinks with the
    /// required proportion.
    #[test]
    fn range_monotonicity(
        objects in arb_objects(),
        candidates in prop::collection::vec(arb_point(), 1..10),
        range in 0.5f64..10.0,
        grow in 1.1f64..3.0,
    ) {
        let small = range_baseline(&objects, &candidates, RangeConfig::new(0.5, range));
        let large = range_baseline(&objects, &candidates, RangeConfig::new(0.5, range * grow));
        for (s, l) in small.iter().zip(&large) {
            prop_assert!(l >= s, "influence must grow with range");
        }
        let lax = range_baseline(&objects, &candidates, RangeConfig::new(0.25, range));
        let strict = range_baseline(&objects, &candidates, RangeConfig::new(0.75, range));
        for (a, b) in lax.iter().zip(&strict) {
            prop_assert!(a >= b, "influence must shrink with the proportion");
        }
    }

    /// RANGE influence is bounded by the object count.
    #[test]
    fn range_bounded_by_objects(
        objects in arb_objects(),
        candidates in prop::collection::vec(arb_point(), 1..10),
    ) {
        let inf = range_baseline(&objects, &candidates, RangeConfig::new(0.5, 5.0));
        for v in inf {
            prop_assert!(v as usize <= objects.len());
        }
    }

    /// MIN-DIST scores are translation-equivariant: shifting the whole
    /// world leaves the scores (and hence the ranking) unchanged.
    #[test]
    fn min_dist_translation_invariance(
        objects in arb_objects(),
        candidates in prop::collection::vec(arb_point(), 1..10),
        dx in -20.0f64..20.0,
        dy in -20.0f64..20.0,
    ) {
        let base = min_dist(&objects, &candidates);
        let shift = |p: &Point| Point::new(p.x + dx, p.y + dy);
        let moved_objects: Vec<MovingObject> = objects
            .iter()
            .map(|o| MovingObject::new(o.id(), o.positions().iter().map(&shift).collect()))
            .collect();
        let moved_candidates: Vec<Point> = candidates.iter().map(&shift).collect();
        let moved = min_dist(&moved_objects, &moved_candidates);
        for (a, b) in base.iter().zip(&moved) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// rank_descending returns a permutation with descending scores.
    #[test]
    fn rank_descending_is_a_sorted_permutation(
        scores in prop::collection::vec(0u32..100, 1..40),
    ) {
        let ranking = rank_descending(&scores);
        let mut seen = ranking.clone();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..scores.len()).collect::<Vec<_>>());
        for w in ranking.windows(2) {
            prop_assert!(
                scores[w[0]] > scores[w[1]]
                    || (scores[w[0]] == scores[w[1]] && w[0] < w[1])
            );
        }
    }
}
