//! Cross-crate integration: all four paper solvers plus the PIN-JOIN
//! extension agree with the exhaustive oracle on realistic generated
//! worlds, across thresholds and probability functions.

use pinocchio::data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
use pinocchio::prelude::*;
use pinocchio::prob::{ConcavePf, ConvexPf, LinearPf, LogsigPf, ProbabilityFunction};

fn world(users: usize, candidates: usize, seed: u64) -> (Vec<MovingObject>, Vec<Point>) {
    let d = SyntheticGenerator::new(GeneratorConfig::small(users, seed)).generate();
    let (_, cands) = sample_candidate_group(&d, candidates, seed ^ 0xABCD);
    (d.objects().to_vec(), cands)
}

fn assert_all_agree<P: ProbabilityFunction + Clone>(
    objects: Vec<MovingObject>,
    candidates: Vec<Point>,
    pf: P,
    tau: f64,
    context: &str,
) {
    let problem = PrimeLs::builder()
        .objects(objects)
        .candidates(candidates)
        .probability_function(pf)
        .tau(tau)
        .build()
        .unwrap();
    let oracle = problem.solve(Algorithm::Naive);
    for algorithm in [
        Algorithm::Pinocchio,
        Algorithm::PinocchioVo,
        Algorithm::PinocchioVoStar,
        Algorithm::PinocchioJoin,
    ] {
        let r = problem.solve(algorithm);
        assert_eq!(
            (r.best_candidate, r.max_influence),
            (oracle.best_candidate, oracle.max_influence),
            "{algorithm} disagrees with NA ({context})"
        );
    }
}

#[test]
fn agreement_across_thresholds() {
    let (objects, candidates) = world(120, 60, 42);
    for tau in [0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
        assert_all_agree(
            objects.clone(),
            candidates.clone(),
            PowerLawPf::paper_default(),
            tau,
            &format!("tau={tau}"),
        );
    }
}

#[test]
fn agreement_across_power_law_parameters() {
    let (objects, candidates) = world(100, 50, 7);
    for lambda in [0.75, 1.0, 1.25] {
        assert_all_agree(
            objects.clone(),
            candidates.clone(),
            PowerLawPf::with_lambda(lambda),
            0.7,
            &format!("lambda={lambda}"),
        );
    }
    for rho in [0.5, 0.7, 0.9] {
        assert_all_agree(
            objects.clone(),
            candidates.clone(),
            PowerLawPf::with_rho(rho),
            0.7,
            &format!("rho={rho}"),
        );
    }
}

#[test]
fn agreement_across_alternative_pfs() {
    // The Fig. 16 sweep: PINOCCHIO is PF-agnostic, including PFs with
    // bounded support (where minMaxRadius can be undefined for most
    // objects).
    let (objects, candidates) = world(90, 40, 13);
    assert_all_agree(
        objects.clone(),
        candidates.clone(),
        LogsigPf::new(0.5, 10.0),
        0.4,
        "logsig",
    );
    assert_all_agree(
        objects.clone(),
        candidates.clone(),
        ConvexPf::new(0.5, 10.0),
        0.4,
        "convex",
    );
    assert_all_agree(
        objects.clone(),
        candidates.clone(),
        ConcavePf::new(0.5, 10.0),
        0.4,
        "concave",
    );
    assert_all_agree(objects, candidates, LinearPf::new(0.5, 10.0), 0.4, "linear");
}

#[test]
fn influence_vectors_match_between_na_and_pin() {
    let (objects, candidates) = world(150, 80, 99);
    let problem = PrimeLs::builder()
        .objects(objects)
        .candidates(candidates)
        .probability_function(PowerLawPf::paper_default())
        .tau(0.7)
        .build()
        .unwrap();
    let na = problem.solve(Algorithm::Naive);
    let pin = problem.solve(Algorithm::Pinocchio);
    assert_eq!(na.influences, pin.influences);
    assert_eq!(na.ranking(), pin.ranking());
    let join = problem.solve(Algorithm::PinocchioJoin);
    assert_eq!(na.influences, join.influences);
    assert_eq!(na.ranking(), join.ranking());
}

#[test]
fn max_influence_is_monotone_decreasing_in_tau() {
    // Fig. 12's right-hand panel: the maximum influence drops as τ grows.
    let (objects, candidates) = world(120, 50, 21);
    let mut last = u32::MAX;
    for tau in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let problem = PrimeLs::builder()
            .objects(objects.clone())
            .candidates(candidates.clone())
            .probability_function(PowerLawPf::paper_default())
            .tau(tau)
            .build()
            .unwrap();
        let inf = problem.solve(Algorithm::PinocchioVo).max_influence;
        assert!(
            inf <= last,
            "influence rose from {last} to {inf} at tau={tau}"
        );
        last = inf;
    }
}

#[test]
fn parallel_solvers_agree_with_sequential() {
    let (objects, candidates) = world(100, 40, 31);
    let problem = PrimeLs::builder()
        .objects(objects)
        .candidates(candidates)
        .probability_function(PowerLawPf::paper_default())
        .tau(0.7)
        .build()
        .unwrap();
    let seq = problem.solve(Algorithm::Naive);
    let par = pinocchio::core::parallel::solve_naive(&problem, 4);
    assert_eq!(par.influences, seq.influences);
    assert_eq!(par.stats, seq.stats, "parallel NA must not drop counters");
    let par = pinocchio::core::parallel::solve_pinocchio(&problem, 4);
    assert_eq!(par.influences, seq.influences);
    let seq = problem.solve(Algorithm::Pinocchio);
    assert_eq!(par.stats, seq.stats, "parallel PIN must not drop counters");
    let seq = problem.solve(Algorithm::PinocchioVo);
    let par = pinocchio::core::parallel::solve_vo(&problem, 4);
    assert_eq!(
        (par.best_candidate, par.max_influence),
        (seq.best_candidate, seq.max_influence)
    );
    let par = pinocchio::core::join::solve_par(&problem, 4);
    assert_eq!(
        (par.best_candidate, par.max_influence),
        (seq.best_candidate, seq.max_influence)
    );
}

mod parallel_vo_property {
    use super::*;
    use proptest::prelude::*;

    fn check_vo_agreement(
        users: usize,
        cands: usize,
        seed: u64,
        tau: f64,
    ) -> Result<(), TestCaseError> {
        let (objects, candidates) = world(users, cands, seed);
        let problem = PrimeLs::builder()
            .objects(objects)
            .candidates(candidates)
            .probability_function(PowerLawPf::paper_default())
            .tau(tau)
            .build()
            .unwrap();
        let oracle = problem.solve(Algorithm::Naive);
        let seq_vo = problem.solve(Algorithm::PinocchioVo);
        prop_assert_eq!(
            (seq_vo.best_candidate, seq_vo.max_influence),
            (oracle.best_candidate, oracle.max_influence),
            "sequential VO vs NA (seed={} tau={})",
            seed,
            tau
        );
        for threads in [1, 2, 8] {
            let par_vo = pinocchio::core::parallel::solve_vo(&problem, threads);
            prop_assert_eq!(
                (par_vo.best_candidate, par_vo.max_influence),
                (oracle.best_candidate, oracle.max_influence),
                "parallel VO vs NA (seed={} tau={} threads={})",
                seed,
                tau,
                threads
            );
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn agrees_on_random_worlds(seed in 0u64..10_000, tau_idx in 0usize..3) {
            let tau = [0.1, 0.5, 0.9][tau_idx];
            check_vo_agreement(60, 30, seed, tau)?;
        }
    }
}

mod join_property {
    use super::*;
    use pinocchio::core::EvalKernel;
    use proptest::prelude::*;

    fn check_join_agreement(
        users: usize,
        cands: usize,
        seed: u64,
        tau: f64,
    ) -> Result<(), TestCaseError> {
        let (objects, candidates) = world(users, cands, seed);
        for kernel in [EvalKernel::Scalar, EvalKernel::Blocked] {
            let problem = PrimeLs::builder()
                .objects(objects.clone())
                .candidates(candidates.clone())
                .probability_function(PowerLawPf::paper_default())
                .tau(tau)
                .evaluation_kernel(kernel)
                .build()
                .unwrap();
            let oracle = problem.solve(Algorithm::Naive);
            let seq = problem.solve(Algorithm::PinocchioJoin);
            prop_assert_eq!(
                &seq.influences,
                &oracle.influences,
                "sequential PIN-JOIN vs NA (seed={} tau={} kernel={:?})",
                seed,
                tau,
                kernel
            );
            prop_assert_eq!(
                (seq.best_candidate, seq.max_influence),
                (oracle.best_candidate, oracle.max_influence)
            );
            for threads in [1, 2, 8] {
                let par = pinocchio::core::join::solve_par(&problem, threads);
                prop_assert_eq!(
                    (par.best_candidate, par.max_influence),
                    (oracle.best_candidate, oracle.max_influence),
                    "parallel PIN-JOIN vs NA (seed={} tau={} threads={} kernel={:?})",
                    seed,
                    tau,
                    threads,
                    kernel
                );
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn agrees_on_random_worlds(seed in 0u64..10_000, tau_idx in 0usize..3) {
            let tau = [0.3, 0.5, 0.7][tau_idx];
            check_join_agreement(60, 30, seed, tau)?;
        }
    }
}

#[test]
fn parallel_vo_handles_all_uninfluenceable_worlds() {
    // τ = 0.95 > PF(0) with single-position objects: nothing can be
    // influenced; every solver must return influence 0 at candidate 0.
    let problem = PrimeLs::builder()
        .objects(vec![
            MovingObject::new(0, vec![Point::new(0.0, 0.0)]),
            MovingObject::new(1, vec![Point::new(5.0, 5.0)]),
            MovingObject::new(2, vec![Point::new(-3.0, 4.0)]),
        ])
        .candidates(vec![
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(3.0, 3.0),
        ])
        .probability_function(PowerLawPf::paper_default())
        .tau(0.95)
        .build()
        .unwrap();
    for threads in [1, 2, 8] {
        let r = pinocchio::core::parallel::solve_vo(&problem, threads);
        assert_eq!(r.max_influence, 0, "threads={threads}");
        assert_eq!(r.best_candidate, 0, "ties break to the smallest index");
        let r = pinocchio::core::join::solve_par(&problem, threads);
        assert_eq!(r.max_influence, 0, "join threads={threads}");
        assert_eq!(r.best_candidate, 0, "join ties break to the smallest index");
    }
}

#[test]
fn parallel_vo_breaks_ties_towards_smallest_index() {
    // Two identical clusters and symmetric candidates guarantee an
    // influence tie; every thread count must resolve it exactly like the
    // sequential solvers (smallest candidate index wins).
    let problem = PrimeLs::builder()
        .objects(vec![
            MovingObject::new(0, vec![Point::new(0.0, 0.0), Point::new(0.1, 0.0)]),
            MovingObject::new(1, vec![Point::new(10.0, 0.0), Point::new(10.1, 0.0)]),
        ])
        .candidates(vec![Point::new(10.05, 0.0), Point::new(0.05, 0.0)])
        .probability_function(PowerLawPf::paper_default())
        .tau(0.7)
        .build()
        .unwrap();
    let na = problem.solve(Algorithm::Naive);
    assert_eq!((na.best_candidate, na.max_influence), (0, 1));
    for threads in [1, 2, 8] {
        let r = pinocchio::core::parallel::solve_vo(&problem, threads);
        assert_eq!(
            (r.best_candidate, r.max_influence),
            (0, 1),
            "threads={threads}"
        );
        let r = pinocchio::core::join::solve_par(&problem, threads);
        assert_eq!(
            (r.best_candidate, r.max_influence),
            (0, 1),
            "join threads={threads}"
        );
    }
}
