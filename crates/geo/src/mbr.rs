//! Minimum bounding rectangles and the `minDist`/`maxDist` metrics.
//!
//! The paper models every moving object `O` by the MBR of its positions
//! (§3.1) and bases both pruning rules on two classic point↔rectangle
//! metrics from Roussopoulos et al. (§4.2):
//!
//! * `minDist(p, R)` — the smallest possible distance from `p` to any
//!   point of `R` (zero when `p` lies inside `R`), and
//! * `maxDist(p, R)` — the largest possible distance from `p` to any point
//!   of `R`, realised at the corner of `R` farthest from `p`.

use crate::point::Point;

/// An axis-aligned minimum bounding rectangle.
///
/// Invariant: `lo.x <= hi.x && lo.y <= hi.y`. Degenerate rectangles
/// (zero width and/or height) are valid and arise naturally for moving
/// objects with a single position, in which case PRIME-LS degenerates to
/// classical location selection (Remark, §4.2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mbr {
    lo: Point,
    hi: Point,
}

impl Mbr {
    /// Creates an MBR from two opposite corners given in any order.
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Mbr {
            lo: a.min(&b),
            hi: a.max(&b),
        }
    }

    /// The MBR of a single point (a degenerate rectangle).
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Mbr { lo: p, hi: p }
    }

    /// The tightest MBR enclosing all `points`.
    ///
    /// Returns `None` for an empty slice.
    pub fn from_points(points: &[Point]) -> Option<Self> {
        let (first, rest) = points.split_first()?;
        let mut mbr = Mbr::from_point(*first);
        for p in rest {
            mbr.expand_to(p);
        }
        Some(mbr)
    }

    /// Lower-left corner.
    #[inline]
    pub fn lo(&self) -> Point {
        self.lo
    }

    /// Upper-right corner.
    #[inline]
    pub fn hi(&self) -> Point {
        self.hi
    }

    /// Width (extent along x), in the same units as the coordinates.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Height (extent along y).
    #[inline]
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Area (`width × height`).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half the perimeter (`width + height`), the classic R-tree "margin".
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Geometric centre.
    #[inline]
    pub fn center(&self) -> Point {
        self.lo.midpoint(&self.hi)
    }

    /// The four corners in counter-clockwise order starting at `lo`.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            self.lo,
            Point::new(self.hi.x, self.lo.y),
            self.hi,
            Point::new(self.lo.x, self.hi.y),
        ]
    }

    /// Grows the MBR in place so it encloses `p`.
    #[inline]
    pub fn expand_to(&mut self, p: &Point) {
        self.lo = self.lo.min(p);
        self.hi = self.hi.max(p);
    }

    /// The smallest MBR enclosing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Mbr) -> Mbr {
        Mbr {
            lo: self.lo.min(&other.lo),
            hi: self.hi.max(&other.hi),
        }
    }

    /// Area increase required for `self` to enclose `other`
    /// (the R-tree insertion heuristic).
    #[inline]
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Whether `p` lies inside or on the boundary of the rectangle.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Whether `other` lies entirely inside `self` (boundaries included).
    #[inline]
    pub fn contains_mbr(&self, other: &Mbr) -> bool {
        self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && self.hi.x >= other.hi.x
            && self.hi.y >= other.hi.y
    }

    /// Whether the rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Mbr) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// Squared `minDist` from `p` to the rectangle.
    ///
    /// Zero when `p` is inside. Keeping the squared form avoids `sqrt` in
    /// pruning comparisons (`minDist > μ` ⇔ `minDistSq > μ²`).
    ///
    /// **Containment monotonicity (anti-monotone).** If `A ⊆ B` then
    /// `minDist(p, B) ≤ minDist(p, A)`: `minDist(p, A)` is the infimum of
    /// `dist(p, q)` over `q ∈ A`, and an infimum over the superset `B ⊇ A`
    /// ranges over at least the same points, so it can only be smaller or
    /// equal. This is what makes a node-level NIB test conservative: a
    /// node MBR contains every child MBR, so `minDist(c, node) > μ`
    /// implies `minDist(c, child) > μ` for every child (Theorem 2 lifted
    /// to subtrees).
    #[inline]
    pub fn min_dist_sq(&self, p: &Point) -> f64 {
        let dx = (self.lo.x - p.x).max(0.0).max(p.x - self.hi.x);
        let dy = (self.lo.y - p.y).max(0.0).max(p.y - self.hi.y);
        dx * dx + dy * dy
    }

    /// `minDist` from `p` to the rectangle (Roussopoulos et al.).
    #[inline]
    pub fn min_dist(&self, p: &Point) -> f64 {
        self.min_dist_sq(p).sqrt()
    }

    /// Squared `maxDist` from `p` to the rectangle.
    ///
    /// Realised at the corner farthest from `p`: independently per axis,
    /// the farther of the two rectangle extents.
    ///
    /// **Containment monotonicity.** If `A ⊆ B` then
    /// `maxDist(p, A) ≤ maxDist(p, B)`: `maxDist(p, A)` is the supremum
    /// of `dist(p, q)` over `q ∈ A`, and the supremum over the superset
    /// `B ⊇ A` ranges over at least the same points, so it can only be
    /// larger or equal. This is what makes a node-level IA test
    /// conservative: a node MBR contains every child MBR, so
    /// `maxDist(c, node) ≤ μ` implies `maxDist(c, child) ≤ μ` for every
    /// child (Theorem 1 lifted to subtrees). Both monotonicity claims are
    /// property-tested in `tests/proptest_geometry.rs`.
    #[inline]
    pub fn max_dist_sq(&self, p: &Point) -> f64 {
        let dx = (p.x - self.lo.x).abs().max((p.x - self.hi.x).abs());
        let dy = (p.y - self.lo.y).abs().max((p.y - self.hi.y).abs());
        dx * dx + dy * dy
    }

    /// `maxDist` from `p` to the rectangle.
    #[inline]
    pub fn max_dist(&self, p: &Point) -> f64 {
        self.max_dist_sq(p).sqrt()
    }

    /// Fused squared `minDist` and `maxDist` from `p`, returned as
    /// `(min_dist_sq, max_dist_sq)`.
    ///
    /// Hot pruning loops need both bounds of the same (point, MBR)
    /// pair; computing them together shares the four per-axis extent
    /// differences instead of re-deriving them per call. Returns
    /// exactly the same values as [`Mbr::min_dist_sq`] and
    /// [`Mbr::max_dist_sq`]: per axis, with `a = lo − p` and
    /// `b = p − hi`, `minDist` uses `max(a, b, 0)` and `maxDist` uses
    /// `max(|a|, |b|) = max(max(a, b), −min(a, b))` — the same reals,
    /// and any `−0.0`/`+0.0` disagreement is erased by squaring.
    // pinocchio-hot: both distance bounds of the log-domain pre-check in one pass
    #[inline]
    pub fn min_max_dist_sq(&self, p: &Point) -> (f64, f64) {
        let ax = self.lo.x - p.x;
        let bx = p.x - self.hi.x;
        let ay = self.lo.y - p.y;
        let by = p.y - self.hi.y;
        let (mx, my) = (ax.max(bx), ay.max(by));
        let nx = mx.max(0.0);
        let ny = my.max(0.0);
        let fx = mx.max(-ax.min(bx));
        let fy = my.max(-ay.min(by));
        (nx * nx + ny * ny, fx * fx + fy * fy)
    }

    /// Squared `minDist` between two rectangles: the smallest possible
    /// distance between any point of `self` and any point of `other`
    /// (zero when they intersect).
    ///
    /// Per axis the gap is the distance between the projected intervals
    /// (zero when they overlap), and the rectangle distance is the
    /// Euclidean combination of the two gaps.
    ///
    /// **Containment monotonicity.** Shrinking either rectangle can only
    /// grow the gap, so for `A ⊆ B`:
    /// `minDistSq(B, Q) ≤ minDistSq(A, Q)` — the same anti-monotonicity
    /// as [`Mbr::min_dist_sq`], which this generalises (a degenerate
    /// `other` reproduces the point form exactly). This is what makes it
    /// sound as an R-tree node admission test: a node MBR contains every
    /// candidate point below it, so `minDistSq(obj, node) > μ²` implies
    /// `minDistSq(obj, c) > μ²` for every candidate `c` in the subtree
    /// (Theorem 2 lifted to candidate subtrees).
    #[inline]
    pub fn min_dist_sq_mbr(&self, other: &Mbr) -> f64 {
        let dx = (self.lo.x - other.hi.x)
            .max(0.0)
            .max(other.lo.x - self.hi.x);
        let dy = (self.lo.y - other.hi.y)
            .max(0.0)
            .max(other.lo.y - self.hi.y);
        dx * dx + dy * dy
    }

    /// Squared `maxDist` between two rectangles: the largest possible
    /// distance between any point of `self` and any point of `other`,
    /// realised at a corner pair.
    ///
    /// Per axis the supremum of `|p − q|` over the two projected
    /// intervals `A = [lo, hi]` and `B = [lo', hi']` is
    /// `max(A.hi − B.lo, B.hi − A.lo)` — stretch right-of-`self`
    /// against left-of-`other` and vice versa; for valid intervals the
    /// two terms sum to `width(A) + width(B) ≥ 0`, so the max is never
    /// negative.
    ///
    /// **Containment monotonicity.** Shrinking either rectangle can
    /// only shrink the supremum, so for `A ⊆ B`:
    /// `maxDistSq(A, Q) ≤ maxDistSq(B, Q)` — the same monotonicity as
    /// [`Mbr::max_dist_sq`], which this generalises (a degenerate
    /// `other` reproduces the point form exactly). This is what makes
    /// it sound as a cell-level IA test: a cell rectangle contains
    /// every query point inside it and a node MBR contains every
    /// object MBR below it, so `maxDistSq(cell, node) ≤ μ²` implies
    /// `maxDist(c, obj) ≤ μ` for every point `c` of the cell and every
    /// object in the subtree (Theorem 1 lifted to cell × subtree).
    #[inline]
    pub fn max_dist_sq_mbr(&self, other: &Mbr) -> f64 {
        let dx = (self.hi.x - other.lo.x).max(other.hi.x - self.lo.x);
        let dy = (self.hi.y - other.lo.y).max(other.hi.y - self.lo.y);
        dx * dx + dy * dy
    }

    /// The MBR inflated by `r` on every side (the Minkowski sum with an
    /// axis-aligned square of half-width `r`). This is the rectangular
    /// over-approximation of the non-influence boundary that Algorithm 1
    /// stores per object ("we use the MBR of NIB to prune candidates in a
    /// more efficient way", §4.3).
    #[inline]
    pub fn inflate(&self, r: f64) -> Mbr {
        debug_assert!(r >= 0.0);
        Mbr {
            lo: Point::new(self.lo.x - r, self.lo.y - r),
            hi: Point::new(self.hi.x + r, self.hi.y + r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect() -> Mbr {
        Mbr::new(Point::new(0.0, 0.0), Point::new(4.0, 2.0))
    }

    #[test]
    fn new_normalizes_corner_order() {
        let m = Mbr::new(Point::new(4.0, 0.0), Point::new(0.0, 2.0));
        assert_eq!(m.lo(), Point::new(0.0, 0.0));
        assert_eq!(m.hi(), Point::new(4.0, 2.0));
    }

    #[test]
    fn from_points_is_tight() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 0.5),
            Point::new(3.0, 2.0),
        ];
        let m = Mbr::from_points(&pts).unwrap();
        assert_eq!(m.lo(), Point::new(-2.0, 0.5));
        assert_eq!(m.hi(), Point::new(3.0, 5.0));
        assert!(Mbr::from_points(&[]).is_none());
    }

    #[test]
    fn fused_min_max_dist_matches_separate_calls() {
        // Degenerate, thin and ordinary rectangles × a point grid that
        // covers inside, edges, corners and all eight outside octants.
        let rects = [
            rect(),
            Mbr::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0)),
            Mbr::new(Point::new(-3.0, 0.0), Point::new(5.0, 0.0)),
            Mbr::new(Point::new(-1.5, -2.5), Point::new(0.25, 7.0)),
        ];
        let coords = [-6.0, -1.5, -0.0, 0.0, 0.25, 1.0, 2.0, 4.0, 9.5];
        for m in rects {
            for &x in &coords {
                for &y in &coords {
                    let p = Point::new(x, y);
                    let (lo, hi) = m.min_max_dist_sq(&p);
                    assert_eq!(lo.to_bits(), m.min_dist_sq(&p).to_bits());
                    assert_eq!(hi.to_bits(), m.max_dist_sq(&p).to_bits());
                }
            }
        }
    }

    #[test]
    fn dimensions() {
        let m = rect();
        assert_eq!(m.width(), 4.0);
        assert_eq!(m.height(), 2.0);
        assert_eq!(m.area(), 8.0);
        assert_eq!(m.margin(), 6.0);
        assert_eq!(m.center(), Point::new(2.0, 1.0));
    }

    #[test]
    fn containment_and_intersection() {
        let m = rect();
        assert!(m.contains_point(&Point::new(2.0, 1.0)));
        assert!(m.contains_point(&Point::new(0.0, 0.0))); // boundary
        assert!(!m.contains_point(&Point::new(4.1, 1.0)));

        let inner = Mbr::new(Point::new(1.0, 0.5), Point::new(2.0, 1.5));
        assert!(m.contains_mbr(&inner));
        assert!(!inner.contains_mbr(&m));
        assert!(m.intersects(&inner));

        let disjoint = Mbr::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(!m.intersects(&disjoint));

        let touching = Mbr::new(Point::new(4.0, 0.0), Point::new(5.0, 1.0));
        assert!(m.intersects(&touching)); // shared edge counts
    }

    #[test]
    fn min_dist_zero_inside_positive_outside() {
        let m = rect();
        assert_eq!(m.min_dist(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(m.min_dist(&Point::new(7.0, 1.0)), 3.0); // beyond right edge
        assert_eq!(m.min_dist(&Point::new(2.0, -2.0)), 2.0); // below
                                                             // diagonal: closest point is the corner (4,2)
        let d = m.min_dist(&Point::new(7.0, 6.0));
        assert!((d - 5.0).abs() < 1e-12);
    }

    #[test]
    fn max_dist_is_to_farthest_corner() {
        let m = rect();
        // from the centre, the farthest corner is any corner: dist = sqrt(4+1)
        let d = m.max_dist(&Point::new(2.0, 1.0));
        assert!((d - 5.0f64.sqrt()).abs() < 1e-12);
        // from outside near lo, farthest corner is hi
        let d = m.max_dist(&Point::new(-1.0, -1.0));
        assert!((d - ((5.0f64).powi(2) + (3.0f64).powi(2)).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn max_dist_upper_bounds_all_corner_distances() {
        let m = rect();
        let p = Point::new(3.5, 9.0);
        let want = m
            .corners()
            .iter()
            .map(|c| c.euclidean(&p))
            .fold(0.0_f64, f64::max);
        assert!((m.max_dist(&p) - want).abs() < 1e-12);
    }

    #[test]
    fn union_and_enlargement() {
        let a = rect();
        let b = Mbr::new(Point::new(3.0, 1.0), Point::new(6.0, 5.0));
        let u = a.union(&b);
        assert_eq!(u.lo(), Point::new(0.0, 0.0));
        assert_eq!(u.hi(), Point::new(6.0, 5.0));
        assert_eq!(a.enlargement(&b), u.area() - a.area());
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn inflate_grows_symmetrically() {
        let m = rect().inflate(1.5);
        assert_eq!(m.lo(), Point::new(-1.5, -1.5));
        assert_eq!(m.hi(), Point::new(5.5, 3.5));
    }

    #[test]
    fn dist_metrics_are_monotone_under_containment() {
        // The subtree-IA / subtree-NIB soundness lemma: growing the
        // rectangle can only grow maxDist and shrink minDist.
        let inner = Mbr::new(Point::new(1.0, 0.5), Point::new(3.0, 1.5));
        let outer = rect().union(&Mbr::new(Point::new(-2.0, -1.0), Point::new(5.0, 3.0)));
        assert!(outer.contains_mbr(&inner));
        for p in [
            Point::new(2.0, 1.0), // inside both
            Point::new(10.0, 10.0),
            Point::new(-4.0, 0.0),
            Point::new(0.0, -7.5),
        ] {
            assert!(outer.max_dist_sq(&p) >= inner.max_dist_sq(&p), "{p}");
            assert!(outer.min_dist_sq(&p) <= inner.min_dist_sq(&p), "{p}");
        }
    }

    #[test]
    fn mbr_to_mbr_min_dist() {
        let a = rect(); // (0,0)..(4,2)
                        // Overlapping: zero.
        assert_eq!(
            a.min_dist_sq_mbr(&Mbr::new(Point::new(3.0, 1.0), Point::new(6.0, 5.0))),
            0.0
        );
        // Touching edge: zero.
        assert_eq!(
            a.min_dist_sq_mbr(&Mbr::new(Point::new(4.0, 0.0), Point::new(5.0, 1.0))),
            0.0
        );
        // Separated along x only.
        assert_eq!(
            a.min_dist_sq_mbr(&Mbr::new(Point::new(7.0, 1.0), Point::new(8.0, 3.0))),
            9.0
        );
        // Diagonal separation: 3-4-5 triangle.
        let far = Mbr::new(Point::new(7.0, 6.0), Point::new(9.0, 9.0));
        assert_eq!(a.min_dist_sq_mbr(&far), 25.0);
        // Symmetric.
        assert_eq!(far.min_dist_sq_mbr(&a), 25.0);
        // Degenerate `other` reproduces the point metric.
        for p in [
            Point::new(7.0, 6.0),
            Point::new(1.0, 1.0),
            Point::new(-2.0, 0.5),
        ] {
            assert_eq!(a.min_dist_sq_mbr(&Mbr::from_point(p)), a.min_dist_sq(&p));
        }
        // Anti-monotone under containment of either side.
        let inner = Mbr::new(Point::new(7.5, 6.5), Point::new(8.0, 8.0));
        assert!(far.contains_mbr(&inner));
        assert!(a.min_dist_sq_mbr(&far) <= a.min_dist_sq_mbr(&inner));
    }

    #[test]
    fn mbr_to_mbr_max_dist() {
        let a = rect(); // (0,0)..(4,2)
                        // Against itself: the diagonal.
        assert_eq!(a.max_dist_sq_mbr(&a), 16.0 + 4.0);
        // Separated along x: far corners (0,0)..(8,3).
        assert_eq!(
            a.max_dist_sq_mbr(&Mbr::new(Point::new(7.0, 1.0), Point::new(8.0, 3.0))),
            64.0 + 9.0
        );
        // Symmetric.
        let far = Mbr::new(Point::new(7.0, 6.0), Point::new(9.0, 9.0));
        assert_eq!(far.max_dist_sq_mbr(&a), a.max_dist_sq_mbr(&far));
        // The supremum over all corner pairs is exactly the helper.
        for other in [
            far,
            Mbr::new(Point::new(-3.0, -1.0), Point::new(1.0, 0.5)),
            Mbr::new(Point::new(1.0, 0.5), Point::new(2.0, 1.5)), // nested
        ] {
            let brute = a
                .corners()
                .iter()
                .flat_map(|p| other.corners().map(|q| p.euclidean(&q)))
                .fold(0.0_f64, f64::max);
            let got = a.max_dist_sq_mbr(&other).sqrt();
            assert!((got - brute).abs() < 1e-12, "{other:?}");
        }
        // Degenerate `other` reproduces the point metric bit-for-bit.
        for p in [
            Point::new(7.0, 6.0),
            Point::new(1.0, 1.0),
            Point::new(-2.0, 0.5),
        ] {
            assert_eq!(
                a.max_dist_sq_mbr(&Mbr::from_point(p)).to_bits(),
                a.max_dist_sq(&p).to_bits()
            );
        }
        // Monotone under containment of either side.
        let inner = Mbr::new(Point::new(7.5, 6.5), Point::new(8.0, 8.0));
        assert!(far.contains_mbr(&inner));
        assert!(a.max_dist_sq_mbr(&inner) <= a.max_dist_sq_mbr(&far));
        let small = Mbr::new(Point::new(1.0, 0.5), Point::new(2.0, 1.5));
        assert!(a.contains_mbr(&small));
        assert!(small.max_dist_sq_mbr(&far) <= a.max_dist_sq_mbr(&far));
    }

    #[test]
    fn degenerate_point_mbr() {
        let p = Point::new(2.0, 3.0);
        let m = Mbr::from_point(p);
        assert_eq!(m.area(), 0.0);
        assert_eq!(m.min_dist(&Point::new(2.0, 5.0)), 2.0);
        assert_eq!(m.max_dist(&Point::new(2.0, 5.0)), 2.0);
        // For a degenerate MBR, minDist == maxDist == point distance
        // (the paper's remark that PRIME-LS degenerates to classical LS).
    }
}
