//! Level-curve construction: tuning `τ` to hit a target influence.
//!
//! Fig. 13 builds ⟨n, τ⟩ pairs with equal maximum influence: fixing the
//! position count `n`, the threshold `τ` is tuned "until their maximum
//! influences equal the reference". The maximum influence is monotone
//! non-increasing in `τ` (a higher bar influences no more objects), so a
//! bisection over `τ` finds the level curve.

/// Finds a `τ ∈ (lo, hi)` whose maximum influence (as reported by
/// `max_influence_at`) is as close as possible to `target`.
///
/// `max_influence_at` is typically a closure running PINOCCHIO-VO at the
/// given threshold. The influence is integer-valued and step-wise in
/// `τ`, so an exact hit may not exist; the search returns the best `τ`
/// seen together with its influence after `iterations` bisection steps.
///
/// # Panics
/// Panics unless `0 < lo < hi < 1` and `iterations > 0`.
pub fn tune_tau(
    mut max_influence_at: impl FnMut(f64) -> u32,
    target: u32,
    lo: f64,
    hi: f64,
    iterations: usize,
) -> (f64, u32) {
    assert!(0.0 < lo && lo < hi && hi < 1.0, "need 0 < lo < hi < 1");
    assert!(iterations > 0, "need at least one iteration");

    let (mut lo, mut hi) = (lo, hi);
    let mut best: Option<(f64, u32)> = None;
    let consider = |tau: f64, inf: u32, best: &mut Option<(f64, u32)>| {
        let dist = inf.abs_diff(target);
        match best {
            Some((_, b)) if b.abs_diff(target) <= dist => {}
            _ => *best = Some((tau, inf)),
        }
    };

    for _ in 0..iterations {
        let mid = (lo + hi) / 2.0;
        let inf = max_influence_at(mid);
        consider(mid, inf, &mut best);
        if inf == target {
            break;
        }
        if inf > target {
            // influence too high ⇒ raise the bar
            lo = mid;
        } else {
            hi = mid;
        }
    }
    best.expect("at least one iteration ran")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_a_smooth_monotone_function() {
        // influence(τ) = round(100·(1−τ)) — strictly decreasing.
        let f = |tau: f64| (100.0 * (1.0 - tau)).round() as u32;
        let (tau, inf) = tune_tau(f, 30, 0.01, 0.99, 40);
        assert_eq!(inf, 30);
        assert!((tau - 0.7).abs() < 0.01, "tau = {tau}");
    }

    #[test]
    fn returns_nearest_on_step_functions() {
        // Step function that skips the exact target value.
        let f = |tau: f64| if tau < 0.5 { 80 } else { 20 };
        let (_, inf) = tune_tau(f, 50, 0.01, 0.99, 30);
        assert!(inf == 80 || inf == 20);
        // 80 and 20 are equidistant from 50; either answer is acceptable,
        // but the function must terminate and return one of them.
    }

    #[test]
    fn counts_calls_economically() {
        let mut calls = 0;
        let f = |tau: f64| {
            calls += 1;
            (1000.0 * (1.0 - tau)) as u32
        };
        let _ = tune_tau(f, 500, 0.01, 0.99, 25);
        assert!(calls <= 25);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi < 1")]
    fn invalid_bracket_rejected() {
        let _ = tune_tau(|_| 0, 1, 0.9, 0.1, 5);
    }
}
