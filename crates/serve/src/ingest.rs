//! The served state: a [`DynamicPrimeLs`] instance wrapped with stable
//! wire-visible ids.
//!
//! Clients name objects and candidates by `u64` ids of their own
//! choosing; internal slot handles are an implementation detail that
//! must never leak (slots are reused after removals, so a raw handle
//! would be ambiguous across epochs). [`World::apply`] is the single
//! update codepath — the server's writer thread and the CLI `replay`
//! subcommand both stream [`UpdateOp`]s through it, so a replayed
//! dataset and a served one evolve bit-identically.
//!
//! `World` is `Clone`: the writer clones the current world, applies a
//! batch of updates, and publishes the clone as the next epoch, leaving
//! the previous epoch's snapshot untouched for in-flight readers.

use crate::wire::{ErrorCode, UpdateOp, WireError};
use pinocchio_core::{Algorithm, CandidateHandle, DynamicPrimeLs, MaintenanceMode, ObjectHandle};
use pinocchio_data::MovingObject;
use pinocchio_geo::Point;
use pinocchio_prob::PowerLawPf;
use std::collections::{BTreeMap, HashMap};

/// The winner of a from-scratch solve, in wire-id terms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOutcome {
    /// The algorithm that produced this outcome.
    pub algorithm: Algorithm,
    /// Wire id of the optimal candidate.
    pub candidate: u64,
    /// Its location.
    pub location: Point,
    /// Its exact influence.
    pub influence: u32,
}

/// Exact PRIME-LS state keyed by client-visible ids.
#[derive(Debug, Clone)]
pub struct World {
    state: DynamicPrimeLs<PowerLawPf>,
    objects: BTreeMap<u64, ObjectHandle>,
    candidates: BTreeMap<u64, CandidateHandle>,
    /// Reverse map so query answers can report wire ids. Kept exactly in
    /// sync with `candidates` by the apply paths.
    candidate_ids: HashMap<CandidateHandle, u64>,
}

impl World {
    /// An empty world with the paper's default probability function.
    ///
    /// # Panics
    /// Panics unless `τ ∈ (0, 1)` (validated by callers before here).
    pub fn new(tau: f64) -> World {
        World {
            state: DynamicPrimeLs::new(PowerLawPf::paper_default(), tau),
            objects: BTreeMap::new(),
            candidates: BTreeMap::new(),
            candidate_ids: HashMap::new(),
        }
    }

    /// Bootstraps from a static problem description. Objects keep their
    /// [`MovingObject::id`] as wire id; candidates get ids `0..m` in
    /// order. Fails with [`ErrorCode::DuplicateObject`] if two objects
    /// share an id.
    pub fn from_parts(
        objects: Vec<MovingObject>,
        candidates: Vec<Point>,
        tau: f64,
    ) -> Result<World, WireError> {
        let mut world = World::new(tau);
        for (i, location) in candidates.into_iter().enumerate() {
            world.apply(&UpdateOp::InsertCandidate {
                candidate: i as u64,
                location,
            })?;
        }
        for object in objects {
            world.apply(&UpdateOp::InsertObject {
                object: object.id(),
                positions: object.positions().to_vec(),
            })?;
        }
        Ok(world)
    }

    /// The influence threshold τ of the underlying dynamic state.
    pub fn tau(&self) -> f64 {
        self.state.tau()
    }

    /// Materialises every live object (wire id preserved), slot order —
    /// the O(positions) freeze the shard router uses to re-partition a
    /// seed world.
    pub fn snapshot_objects(&self) -> Vec<MovingObject> {
        self.state.objects().collect()
    }

    /// Every live candidate as `(wire id, location, influence)`, in slot
    /// order — the per-shard partial the sharded world sums elementwise.
    pub fn live_influences(&self) -> Result<Vec<(u64, Point, u32)>, WireError> {
        self.state
            .live_candidates()
            .into_iter()
            .map(|(handle, location, influence)| Ok((self.wire_id(handle)?, location, influence)))
            .collect()
    }

    /// The active maintenance mode of the underlying dynamic state.
    pub fn maintenance_mode(&self) -> MaintenanceMode {
        self.state.maintenance_mode()
    }

    /// Switches how the underlying [`DynamicPrimeLs`] revalidates pairs
    /// on updates. Answers are identical in both modes; benchmarks use
    /// [`MaintenanceMode::FullScan`] as the reference cost.
    pub fn set_maintenance_mode(&mut self, mode: MaintenanceMode) {
        self.state.set_maintenance_mode(mode);
    }

    /// Rebuilds the influence counts from scratch and asserts they match
    /// the incremental state (see
    /// [`DynamicPrimeLs::verify_against_static`]). Test/benchmark gate.
    pub fn verify_against_static(&self) {
        self.state.verify_against_static();
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of live candidates.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// The live object ids, ascending.
    pub fn object_ids(&self) -> Vec<u64> {
        self.objects.keys().copied().collect()
    }

    /// The live candidate ids, ascending.
    pub fn candidate_ids(&self) -> Vec<u64> {
        self.candidates.keys().copied().collect()
    }

    /// Applies one update; on error the world is unchanged.
    ///
    /// All validation happens before any mutation, so the underlying
    /// panicking contracts of [`DynamicPrimeLs`] (stale handles,
    /// non-finite coordinates) are unreachable from here.
    pub fn apply(&mut self, op: &UpdateOp) -> Result<(), WireError> {
        match op {
            UpdateOp::InsertObject { object, positions } => {
                if self.objects.contains_key(object) {
                    return Err(WireError::new(
                        ErrorCode::DuplicateObject,
                        format!("object {object} is already live"),
                    ));
                }
                if positions.is_empty() {
                    return Err(WireError::malformed(
                        "an object needs at least one position",
                    ));
                }
                if let Some(p) = positions.iter().find(|p| !p.is_finite()) {
                    return Err(WireError::new(
                        ErrorCode::NonFinite,
                        format!(
                            "object {object} has a non-finite position ({}, {})",
                            p.x, p.y
                        ),
                    ));
                }
                let handle = self
                    .state
                    .insert_object(MovingObject::new(*object, positions.clone()));
                self.objects.insert(*object, handle);
                Ok(())
            }
            UpdateOp::AppendPosition { object, position } => {
                if !position.is_finite() {
                    return Err(WireError::new(
                        ErrorCode::NonFinite,
                        format!("position for object {object} is not finite"),
                    ));
                }
                let handle = *self.objects.get(object).ok_or_else(|| {
                    WireError::new(ErrorCode::UnknownObject, format!("no live object {object}"))
                })?;
                self.state.append_position(handle, *position);
                Ok(())
            }
            UpdateOp::RemoveObject { object } => {
                let handle = self.objects.remove(object).ok_or_else(|| {
                    WireError::new(ErrorCode::UnknownObject, format!("no live object {object}"))
                })?;
                self.state.remove_object(handle);
                Ok(())
            }
            UpdateOp::InsertCandidate {
                candidate,
                location,
            } => {
                if self.candidates.contains_key(candidate) {
                    return Err(WireError::new(
                        ErrorCode::DuplicateCandidate,
                        format!("candidate {candidate} is already live"),
                    ));
                }
                if !location.is_finite() {
                    return Err(WireError::new(
                        ErrorCode::NonFinite,
                        format!("location for candidate {candidate} is not finite"),
                    ));
                }
                let handle = self.state.insert_candidate(*location);
                self.candidates.insert(*candidate, handle);
                self.candidate_ids.insert(handle, *candidate);
                Ok(())
            }
            UpdateOp::RemoveCandidate { candidate } => {
                let handle = self.candidates.remove(candidate).ok_or_else(|| {
                    WireError::new(
                        ErrorCode::UnknownCandidate,
                        format!("no live candidate {candidate}"),
                    )
                })?;
                self.candidate_ids.remove(&handle);
                self.state.remove_candidate(handle);
                Ok(())
            }
        }
    }

    /// Wire id of a handle; total for handles minted by this world.
    pub(crate) fn wire_id(&self, handle: CandidateHandle) -> Result<u64, WireError> {
        self.candidate_ids.get(&handle).copied().ok_or_else(|| {
            WireError::new(
                ErrorCode::UnknownCandidate,
                "internal: candidate handle without a wire id".to_string(),
            )
        })
    }

    /// The current optimum as `(wire id, location, influence)`; ties
    /// break towards the earlier-created candidate (smaller slot).
    pub fn best(&self) -> Result<Option<(u64, Point, u32)>, WireError> {
        match self.state.best() {
            None => Ok(None),
            Some((handle, location, influence)) => {
                Ok(Some((self.wire_id(handle)?, location, influence)))
            }
        }
    }

    /// The `k` highest-influence candidates as
    /// `(wire id, location, influence)`, influence descending, ties by
    /// slot (creation) order — the same order a ranking derived from the
    /// static solvers' influence vector would produce.
    pub fn top_k(&self, k: usize) -> Result<Vec<(u64, Point, u32)>, WireError> {
        if k == 0 {
            return Ok(Vec::new());
        }
        // `live_candidates` yields slot order, so the enumeration index
        // is the tie rank; carrying it explicitly lets the unstable
        // partial selection reproduce what a stable full sort gave.
        let mut live: Vec<(usize, (CandidateHandle, Point, u32))> = self
            .state
            .live_candidates()
            .into_iter()
            .enumerate()
            .collect();
        let rank = |a: &(usize, (CandidateHandle, Point, u32)),
                    b: &(usize, (CandidateHandle, Point, u32))| {
            (std::cmp::Reverse(a.1 .2), a.0).cmp(&(std::cmp::Reverse(b.1 .2), b.0))
        };
        // O(m + k log k) partial selection instead of an O(m log m)
        // full sort: move the top k into the front, then order them.
        if k < live.len() {
            live.select_nth_unstable_by(k - 1, rank);
            live.truncate(k);
        }
        live.sort_unstable_by(rank);
        live.into_iter()
            .map(|(_, (handle, location, influence))| {
                Ok((self.wire_id(handle)?, location, influence))
            })
            .collect()
    }

    /// Exact influence of one candidate, by wire id.
    pub fn influence_of(&self, candidate: u64) -> Result<u32, WireError> {
        let handle = *self.candidates.get(&candidate).ok_or_else(|| {
            WireError::new(
                ErrorCode::UnknownCandidate,
                format!("no live candidate {candidate}"),
            )
        })?;
        Ok(self.state.influence(handle))
    }

    /// Freezes the state into a static problem plus the wire id of each
    /// candidate index (index order = slot order) — the per-shard input
    /// of the sharded solve path.
    pub(crate) fn to_problem(
        &self,
    ) -> Result<(pinocchio_core::PrimeLs<PowerLawPf>, Vec<u64>), WireError> {
        let (problem, slots) = self.state.to_prime_ls()?;
        let ids = slots
            .into_iter()
            .map(|handle| self.wire_id(handle))
            .collect::<Result<Vec<u64>, WireError>>()?;
        Ok((problem, ids))
    }

    /// Freezes the world and computes its influence heat map (see
    /// [`pinocchio_heatmap::try_heatmap`]). `frame` defaults to the
    /// influenceable-object bounds of the frozen problem; the sharded
    /// coordinator passes the global frame explicitly so per-shard
    /// grids line up tile-for-tile.
    pub fn heatmap(
        &self,
        resolution: u32,
        frame: Option<pinocchio_geo::Mbr>,
    ) -> Result<pinocchio_heatmap::Heatmap, WireError> {
        let (problem, _) = self.to_problem()?;
        Ok(pinocchio_heatmap::try_heatmap(&problem, resolution, frame)?)
    }

    /// Freezes the world and finds the `k` highest-influence tiles of
    /// its (virtual) heat map (see [`pinocchio_heatmap::try_top_region`]).
    pub fn top_region(
        &self,
        k: usize,
        resolution: u32,
        frame: Option<pinocchio_geo::Mbr>,
    ) -> Result<pinocchio_heatmap::TopRegion, WireError> {
        let (problem, _) = self.to_problem()?;
        Ok(pinocchio_heatmap::try_top_region(
            &problem, k, resolution, frame,
        )?)
    }

    /// The influenceable-object bounds of the frozen state — the frame
    /// a [`Self::heatmap`] call without an explicit frame rasterises.
    /// `None` when no object is influenceable anywhere.
    pub fn object_frame(&self) -> Result<Option<pinocchio_geo::Mbr>, WireError> {
        let (problem, _) = self.to_problem()?;
        Ok(problem.object_tree().bounds())
    }

    /// Freezes the world and solves it from scratch with the named
    /// algorithm, dispatching to the parallel drivers when
    /// `threads > 1`. Every algorithm returns the same winner as
    /// [`Self::best`] (ties included) — the exactness property the soak
    /// suite and the load generator gate on.
    pub fn solve(&self, algorithm: Algorithm, threads: usize) -> Result<SolveOutcome, WireError> {
        let (problem, slots) = self.state.to_prime_ls()?;
        let threads = threads.max(1);
        let result = match (algorithm, threads) {
            (Algorithm::Naive, t) if t > 1 => pinocchio_core::solve_naive_par(&problem, t),
            (Algorithm::Pinocchio, t) if t > 1 => pinocchio_core::solve_pinocchio_par(&problem, t),
            (Algorithm::PinocchioVo, t) if t > 1 => pinocchio_core::try_solve_vo_par(&problem, t)?,
            (Algorithm::PinocchioJoin, t) if t > 1 => {
                pinocchio_core::join::try_solve_par(&problem, t)?
            }
            // PIN-VO* has no parallel driver; everything else at one
            // thread runs the sequential solver.
            (algo, _) => problem.solve(algo),
        };
        let handle = slots[result.best_candidate];
        Ok(SolveOutcome {
            algorithm: result.algorithm,
            candidate: self.wire_id(handle)?,
            location: result.best_location,
            influence: result.max_influence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn insert_candidate(id: u64, x: f64, y: f64) -> UpdateOp {
        UpdateOp::InsertCandidate {
            candidate: id,
            location: Point::new(x, y),
        }
    }

    fn insert_object(id: u64, positions: Vec<Point>) -> UpdateOp {
        UpdateOp::InsertObject {
            object: id,
            positions,
        }
    }

    fn random_world(seed: u64, objects: usize, candidates: usize) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = World::new(0.7);
        for j in 0..candidates {
            w.apply(&insert_candidate(
                j as u64,
                rng.gen_range(0.0..30.0),
                rng.gen_range(0.0..20.0),
            ))
            .unwrap();
        }
        for i in 0..objects {
            let n = rng.gen_range(1..10);
            let positions = (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0)))
                .collect();
            w.apply(&insert_object(i as u64, positions)).unwrap();
        }
        w
    }

    #[test]
    fn update_errors_are_typed_and_leave_state_unchanged() {
        let mut w = World::new(0.7);
        w.apply(&insert_candidate(1, 0.0, 0.0)).unwrap();
        let before = w.candidate_ids();

        let dup = w.apply(&insert_candidate(1, 5.0, 5.0)).unwrap_err();
        assert_eq!(dup.code, ErrorCode::DuplicateCandidate);
        let unknown = w
            .apply(&UpdateOp::RemoveCandidate { candidate: 9 })
            .unwrap_err();
        assert_eq!(unknown.code, ErrorCode::UnknownCandidate);
        let nonfinite = w.apply(&insert_candidate(2, f64::NAN, 0.0)).unwrap_err();
        assert_eq!(nonfinite.code, ErrorCode::NonFinite);
        let no_obj = w
            .apply(&UpdateOp::AppendPosition {
                object: 3,
                position: Point::ORIGIN,
            })
            .unwrap_err();
        assert_eq!(no_obj.code, ErrorCode::UnknownObject);
        let empty = w.apply(&insert_object(4, vec![])).unwrap_err();
        assert_eq!(empty.code, ErrorCode::Malformed);

        assert_eq!(w.candidate_ids(), before);
        assert_eq!(w.object_count(), 0);
    }

    #[test]
    fn ids_stay_stable_across_slot_reuse() {
        let mut w = World::new(0.7);
        w.apply(&insert_candidate(10, 0.0, 0.0)).unwrap();
        w.apply(&insert_candidate(20, 10.0, 0.0)).unwrap();
        w.apply(&insert_object(1, vec![Point::new(0.1, 0.0)]))
            .unwrap();
        assert_eq!(w.influence_of(10).unwrap(), 1);
        // Remove candidate 10; a new candidate reuses its slot but must
        // answer under its own id.
        w.apply(&UpdateOp::RemoveCandidate { candidate: 10 })
            .unwrap();
        w.apply(&insert_candidate(30, 0.2, 0.0)).unwrap();
        assert_eq!(w.influence_of(30).unwrap(), 1);
        assert_eq!(
            w.influence_of(10).unwrap_err().code,
            ErrorCode::UnknownCandidate
        );
        let (best, _, inf) = w.best().unwrap().expect("live candidates");
        assert_eq!(inf, 1);
        // Ties break towards the smaller slot: candidate 30 sits in the
        // freed slot 0, ahead of candidate 20 in slot 1.
        assert_eq!(best, 30);
    }

    #[test]
    fn top_k_ranks_by_influence_then_creation_order() {
        let mut w = World::new(0.6);
        w.apply(&insert_candidate(7, 0.0, 0.0)).unwrap();
        w.apply(&insert_candidate(8, 50.0, 50.0)).unwrap();
        w.apply(&insert_candidate(9, 0.1, 0.0)).unwrap();
        for i in 0..3 {
            w.apply(&insert_object(i, vec![Point::new(0.05, 0.0)]))
                .unwrap();
        }
        let ranking = w.top_k(10).unwrap();
        assert_eq!(ranking.len(), 3);
        // Candidates 7 and 9 both reach all three objects; 7 was created
        // first and wins the tie. Candidate 8 is out of range.
        assert_eq!(ranking[0].0, 7);
        assert_eq!(ranking[1].0, 9);
        assert_eq!(ranking[0].2, ranking[1].2);
        assert_eq!(ranking[2], (8, Point::new(50.0, 50.0), 0));
        assert_eq!(w.top_k(1).unwrap().len(), 1);
    }

    #[test]
    fn top_k_partial_selection_matches_full_stable_sort() {
        // The partial selection must reproduce the old full stable sort
        // for every k, including heavy influence ties.
        let w = random_world(17, 40, 23);
        // Build the reference ranking the pre-selection way: stable
        // sort of the slot-ordered live list by descending influence.
        let mut reference: Vec<(u64, Point, u32)> = w
            .state
            .live_candidates()
            .into_iter()
            .map(|(handle, location, influence)| (w.candidate_ids[&handle], location, influence))
            .collect();
        reference.sort_by_key(|entry| std::cmp::Reverse(entry.2));
        for k in [0, 1, 2, 5, 22, 23, 24, 100] {
            let got = w.top_k(k).unwrap();
            assert_eq!(got.len(), k.min(reference.len()), "k = {k}");
            assert_eq!(got, reference[..got.len()], "k = {k}");
        }
    }

    #[test]
    fn maintenance_mode_round_trips_and_keeps_answers() {
        let mut w = random_world(19, 25, 9);
        assert_eq!(w.maintenance_mode(), MaintenanceMode::Delta);
        let before = w.top_k(9).unwrap();
        w.set_maintenance_mode(MaintenanceMode::FullScan);
        assert_eq!(w.maintenance_mode(), MaintenanceMode::FullScan);
        for i in 25..30 {
            w.apply(&insert_object(i, vec![Point::new(1.0, 1.0)]))
                .unwrap();
        }
        w.verify_against_static();
        w.set_maintenance_mode(MaintenanceMode::Delta);
        for i in 30..35 {
            w.apply(&insert_object(i, vec![Point::new(1.0, 1.0)]))
                .unwrap();
        }
        w.verify_against_static();
        assert_eq!(w.top_k(9).unwrap().len(), before.len());
    }

    #[test]
    fn solve_matches_best_for_every_algorithm() {
        let w = random_world(11, 30, 8);
        let (best_id, best_loc, best_inf) = w.best().unwrap().expect("live candidates");
        for algorithm in [
            Algorithm::Naive,
            Algorithm::Pinocchio,
            Algorithm::PinocchioVo,
            Algorithm::PinocchioVoStar,
            Algorithm::PinocchioJoin,
        ] {
            for threads in [1, 3] {
                let outcome = w.solve(algorithm, threads).unwrap();
                assert_eq!(outcome.candidate, best_id, "{algorithm:?} x{threads}");
                assert_eq!(outcome.influence, best_inf, "{algorithm:?} x{threads}");
                assert_eq!(outcome.location, best_loc, "{algorithm:?} x{threads}");
            }
        }
    }

    #[test]
    fn solve_on_an_empty_world_is_a_build_error() {
        let w = World::new(0.7);
        let err = w.solve(Algorithm::PinocchioVo, 1).unwrap_err();
        assert_eq!(err.code, ErrorCode::Build);
    }

    #[test]
    fn from_parts_round_trips_through_apply() {
        let mut rng = StdRng::seed_from_u64(5);
        let objects: Vec<MovingObject> = (0..12)
            .map(|i| {
                let n = rng.gen_range(1..6);
                MovingObject::new(
                    i,
                    (0..n)
                        .map(|_| Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)))
                        .collect(),
                )
            })
            .collect();
        let candidates: Vec<Point> = (0..5)
            .map(|_| Point::new(rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)))
            .collect();
        let w = World::from_parts(objects.clone(), candidates.clone(), 0.7).unwrap();
        assert_eq!(w.object_count(), 12);
        assert_eq!(w.candidate_ids(), (0..5).collect::<Vec<u64>>());
        // Duplicate object ids are rejected.
        let mut dup = objects;
        dup.push(MovingObject::new(0, vec![Point::ORIGIN]));
        let err = World::from_parts(dup, candidates, 0.7).unwrap_err();
        assert_eq!(err.code, ErrorCode::DuplicateObject);
    }
}
