//! NA — the exhaustive baseline (§6.1).
//!
//! Computes the cumulative influence probability for every
//! object–candidate pair and picks the candidate with the highest
//! influence. `O(m · r · n̄)` position evaluations; the yardstick every
//! other solver is measured against, and the correctness oracle for the
//! test suite.

use crate::problem::PrimeLs;
use crate::result::{argmax_smallest_index, Algorithm, SolveResult, SolveStats};
use pinocchio_prob::ProbabilityFunction;
use std::time::Instant;

/// Runs the NA algorithm.
pub fn solve<P: ProbabilityFunction + Clone>(problem: &PrimeLs<P>) -> SolveResult {
    let start = Instant::now();
    let mut pair = problem.pair_eval();
    let mut stats = SolveStats::default();

    // Candidate-tiled sweep: under the log-blocked kernel each object
    // validates `tile_width()` candidates per dispatch (the O(1)
    // object-MBR pre-check runs across the whole tile with the object
    // state in registers); under the other kernels the width is 1 and
    // this is exactly the historical per-pair loop.
    let width = pair.tile_width();
    let mut influences = vec![0u32; problem.candidates().len()];
    for k in 0..problem.objects().len() {
        for (t, tile) in problem.candidates().chunks(width).enumerate() {
            let mut mask = pair.influences_tile(tile, k, false, &mut stats);
            while mask != 0 {
                let j = mask.trailing_zeros() as usize;
                influences[t * width + j] += 1; // pinocchio-lint: allow(panic-path) -- j is a set-bit index of a mask whose bits map to this tile's chunk, so t*width+j < candidates.len()
                mask &= mask - 1;
            }
        }
    }

    let (best_candidate, max_influence) = argmax_smallest_index(&influences)
        // pinocchio-lint: allow(panic-path) -- the builder rejects empty candidate sets (BuildError::NoCandidates), so the influence vector is non-empty
        .expect("at least one candidate by construction");

    SolveResult {
        algorithm: Algorithm::Naive,
        best_candidate,
        best_location: problem.candidates()[best_candidate],
        max_influence,
        influences: Some(influences),
        stats,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinocchio_data::MovingObject;
    use pinocchio_geo::Point;
    use pinocchio_prob::PowerLawPf;

    fn problem() -> PrimeLs<PowerLawPf> {
        // Object 0 clusters near (0,0); object 1 near (10,10); object 2
        // has one position at each cluster.
        PrimeLs::builder()
            .objects(vec![
                MovingObject::new(0, vec![Point::new(0.0, 0.0), Point::new(0.5, 0.5)]),
                MovingObject::new(1, vec![Point::new(10.0, 10.0), Point::new(10.5, 9.5)]),
                MovingObject::new(2, vec![Point::new(0.2, 0.0), Point::new(10.0, 10.2)]),
            ])
            .candidates(vec![Point::new(0.2, 0.2), Point::new(10.2, 10.0)])
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .build()
            .unwrap()
    }

    #[test]
    fn counts_influences_exactly() {
        let p = problem();
        let r = solve(&p);
        // Candidate 0 sits inside cluster A: influences objects 0 and 2
        // (object 2's near position contributes PF(~0.28) ≈ 0.7 plus the
        // far one) — verify against direct computation.
        let eval = p.evaluator();
        let mut expected = vec![0u32; 2];
        for (j, c) in p.candidates().iter().enumerate() {
            for o in p.objects() {
                if eval.influences(c, o.positions(), p.tau()) {
                    expected[j] += 1;
                }
            }
        }
        assert_eq!(r.influences.as_ref().unwrap(), &expected);
        let max = *expected.iter().max().unwrap();
        assert_eq!(r.max_influence, max);
        assert_eq!(
            r.best_candidate,
            expected.iter().position(|&v| v == max).unwrap(),
            "ties must break towards the smallest index"
        );
    }

    #[test]
    fn stats_count_all_pairs() {
        let p = problem();
        let r = solve(&p);
        assert_eq!(r.stats.validated_pairs, 6); // 3 objects × 2 candidates
        assert_eq!(r.stats.positions_evaluated, 12); // every pair scans 2 positions
        assert_eq!(r.stats.pruned_pairs(), 0);
    }

    #[test]
    fn multi_influence_is_possible() {
        // A single candidate equidistant-ish from everything with a lax
        // threshold influences multiple objects — the paper's key departure
        // from BRNN semantics.
        let p = PrimeLs::builder()
            .objects(vec![
                MovingObject::new(0, vec![Point::new(-1.0, 0.0)]),
                MovingObject::new(1, vec![Point::new(1.0, 0.0)]),
            ])
            .candidates(vec![Point::new(0.0, 0.0)])
            .probability_function(PowerLawPf::paper_default())
            .tau(0.2)
            .build()
            .unwrap();
        assert_eq!(solve(&p).max_influence, 2);
    }
}
