//! Table 5 — "Five Groups": Gowalla objects bucketed by position count.
//!
//! Paper values: [1,10): 2,501  [10,30): 4,325  [30,50): 1,337
//! `[50,70)`: 655  `[70,780]`: 1,344.

use pinocchio_bench::{dataset, write_record, DatasetKind};
use pinocchio_data::{group_by_position_count, TABLE5_BOUNDS};
use pinocchio_eval::Table;

fn main() {
    let d = dataset(DatasetKind::Gowalla);
    let groups = group_by_position_count(&d, &TABLE5_BOUNDS);

    let mut table = Table::new(
        "Table 5: Gowalla-like objects grouped by number of positions",
        &["# of positions", "# of objects"],
    );
    for g in &groups {
        table.push_row(vec![
            format!("[{}, {})", g.lo, g.hi),
            g.object_indices.len().to_string(),
        ]);
    }
    table.push_row(vec!["total".into(), d.objects().len().to_string()]);
    println!("{table}");

    write_record(
        "table5_groups",
        &serde_json::json!({
            "bounds": TABLE5_BOUNDS,
            "counts": groups.iter().map(|g| g.object_indices.len()).collect::<Vec<_>>(),
            "total": d.objects().len(),
        }),
    );
}
