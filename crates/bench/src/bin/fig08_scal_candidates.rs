//! Fig. 8 — scalability in the number of candidates.
//!
//! Running time of NA / PIN / PIN-VO / PIN-VO* on both datasets while the
//! candidate-set size sweeps over {200, 400, 600, 800, 1000}
//! (τ = 0.7, ρ = 0.9, λ = 1.0 — the paper's defaults).
//!
//! Expected shape (paper): every algorithm grows with m; PIN-VO is the
//! fastest by orders of magnitude over NA; PIN slightly ahead of
//! PIN-VO*; all three pruned/optimized variants are faster on F than on
//! G relative to NA.

use pinocchio_bench::*;
use pinocchio_core::Algorithm;
use pinocchio_data::sample_candidate_group;
use pinocchio_eval::Table;
use pinocchio_prob::PowerLawPf;

fn main() {
    let mut record = serde_json::Map::new();
    for kind in [DatasetKind::Foursquare, DatasetKind::Gowalla] {
        let d = dataset(kind);
        let mut table = Table::new(
            format!("Fig. 8 ({}): running time vs #candidates", kind.letter()),
            &["m", "NA", "PIN", "PIN-VO", "PIN-VO*", "best", "max inf"],
        );
        let mut per_kind = Vec::new();
        for &m in &defaults::CANDIDATE_SWEEP {
            let (_, candidates) = sample_candidate_group(&d, m.min(d.venues().len()), 8);
            let p = problem(&d, candidates, PowerLawPf::paper_default(), defaults::TAU);
            let mut row = vec![m.to_string()];
            let mut times = serde_json::Map::new();
            let mut answer = (0usize, 0u32);
            for algorithm in Algorithm::ALL {
                let (r, secs) = timed_solve(&p, algorithm);
                row.push(fmt_secs(secs));
                times.insert(algorithm.label().to_string(), serde_json::json!(secs));
                answer = (r.best_candidate, r.max_influence);
            }
            row.push(format!("#{}", answer.0));
            row.push(answer.1.to_string());
            table.push_row(row);
            per_kind.push(serde_json::json!({ "m": m, "seconds": times }));
        }
        println!("{table}");
        record.insert(kind.letter().to_string(), serde_json::json!(per_kind));
    }
    write_record("fig08_scal_candidates", &serde_json::Value::Object(record));
}
