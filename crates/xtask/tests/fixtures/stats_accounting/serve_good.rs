//! Fixture: a service entry point wired into `ServeStats`.
//!
//! Mirrors the real server's discipline: workers accumulate batch-local
//! counters and merge them under the shared lock at batch boundaries,
//! so the accounting identity (`lines_received` equals the sum of every
//! terminal outcome) holds at quiescence.

use crate::stats::ServeStats;

/// Serves and reports the merged counters on drain.
pub fn serve_requests() -> ServeStats {
    let mut stats = ServeStats::default();
    stats.lines_received += 1;
    stats.queries_best += 1;
    stats
}
