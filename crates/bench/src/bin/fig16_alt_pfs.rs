//! Fig. 16 — PINOCCHIO under alternative probability functions.
//!
//! (a) the four PF shapes — log-sigmoid plus its convex and concave
//!     parts, and a linear ramp — normalised to the same scale
//!     (ρ = 0.5, support 10 km);
//! (b) PIN-VO running time and maximum influence under each PF on the
//!     Foursquare-like dataset (τ = 0.4, below the ρ = 0.5 ceiling).
//!
//! Expected shape (paper): "despite slight differences, the model can
//! handle different PFs" — all four run in the same ballpark and return
//! sensible optima, with influence ordered by how slowly each PF decays
//! (concave ≥ logsig/linear ≥ convex).

use pinocchio_bench::*;
use pinocchio_core::{Algorithm, PrimeLs};
use pinocchio_data::sample_candidate_group;
use pinocchio_eval::Table;
use pinocchio_prob::{ConcavePf, ConvexPf, LinearPf, LogsigPf, ProbabilityFunction};

const RHO: f64 = 0.5;
const SCALE_KM: f64 = 10.0;
const TAU: f64 = 0.4;

fn solve_with<P: ProbabilityFunction + Clone>(
    d: &pinocchio_data::Dataset,
    candidates: Vec<pinocchio_geo::Point>,
    pf: P,
) -> (pinocchio_core::SolveResult, f64) {
    let p = PrimeLs::builder()
        .objects(d.objects().to_vec())
        .candidates(candidates)
        .probability_function(pf)
        .tau(TAU)
        .build()
        .expect("well-formed");
    let r = p.solve(Algorithm::PinocchioVo);
    let secs = r.elapsed.as_secs_f64();
    (r, secs)
}

fn main() {
    // (a) curve table.
    let logsig = LogsigPf::new(RHO, SCALE_KM);
    let convex = ConvexPf::new(RHO, SCALE_KM);
    let concave = ConcavePf::new(RHO, SCALE_KM);
    let linear = LinearPf::new(RHO, SCALE_KM);
    let mut curves = Table::new(
        "Fig. 16a: alternative PFs (rho = 0.5, scale = 10 km)",
        &["d (km)", "logsig", "convex", "concave", "linear"],
    );
    let distances = linspace(0.0, SCALE_KM, 11);
    for &d in &distances {
        curves.push_row(vec![
            format!("{d:.0}"),
            format!("{:.3}", logsig.prob(d)),
            format!("{:.3}", convex.prob(d)),
            format!("{:.3}", concave.prob(d)),
            format!("{:.3}", linear.prob(d)),
        ]);
    }
    println!("{curves}");

    // (b) efficiency and max influence per PF.
    let d = dataset(DatasetKind::Foursquare);
    let (_, candidates) =
        sample_candidate_group(&d, defaults::CANDIDATES.min(d.venues().len()), 16);
    let mut table = Table::new(
        "Fig. 16b (F): PIN-VO under each PF (tau = 0.4)",
        &["PF", "PIN-VO", "max inf", "best"],
    );
    let mut rec = Vec::new();
    let mut run = |name: &str, r: (pinocchio_core::SolveResult, f64)| {
        let (result, secs) = r;
        table.push_row(vec![
            name.to_string(),
            fmt_secs(secs),
            result.max_influence.to_string(),
            format!("#{}", result.best_candidate),
        ]);
        rec.push(serde_json::json!({
            "pf": name, "vo_secs": secs, "max_influence": result.max_influence,
        }));
    };
    run("logsig", solve_with(&d, candidates.clone(), logsig));
    run("convex", solve_with(&d, candidates.clone(), convex));
    run("concave", solve_with(&d, candidates.clone(), concave));
    run("linear", solve_with(&d, candidates.clone(), linear));
    println!("{table}");

    write_record("fig16_alt_pfs", &serde_json::json!(rec));
}
