//! Shared harness for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper's evaluation section has a
//! matching binary in `src/bin/` (see DESIGN.md §5 for the index). Each
//! binary prints the paper-style rows to stdout and writes a JSON record
//! to `target/experiments/<id>.json` so EXPERIMENTS.md can be assembled
//! reproducibly.
//!
//! ## Scale control
//!
//! The full paper-calibrated datasets (2.3k/10k users) make some sweeps
//! take minutes. Set `PINOCCHIO_SCALE=small` to run every experiment on
//! a proportionally shrunken world (same generative process, ~10× fewer
//! users) — the qualitative shapes survive, which is what the
//! experiments assert.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use pinocchio_core::{Algorithm, PrimeLs, SolveResult};
use pinocchio_data::{Dataset, GeneratorConfig, SyntheticGenerator};
use pinocchio_prob::PowerLawPf;
use std::path::PathBuf;
use std::time::Duration;

/// Which of the two paper datasets an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Foursquare-Singapore-like (F).
    Foursquare,
    /// Gowalla-California-like (G).
    Gowalla,
}

impl DatasetKind {
    /// The paper's one-letter abbreviation.
    pub fn letter(&self) -> &'static str {
        match self {
            DatasetKind::Foursquare => "F",
            DatasetKind::Gowalla => "G",
        }
    }
}

/// Whether the harness runs at full (paper) scale or the fast CI scale.
pub fn is_small_scale() -> bool {
    std::env::var("PINOCCHIO_SCALE").as_deref() == Ok("small")
}

/// Generates the requested dataset at the configured scale.
pub fn dataset(kind: DatasetKind) -> Dataset {
    let mut config = match kind {
        DatasetKind::Foursquare => GeneratorConfig::foursquare_like(),
        DatasetKind::Gowalla => GeneratorConfig::gowalla_like(),
    };
    if is_small_scale() {
        config.n_users /= 10;
        config.n_venues /= 10;
        config.name.push_str("-small");
    }
    SyntheticGenerator::new(config).generate()
}

/// The paper's default parameters (§6.1): 600 candidates, τ = 0.7,
/// ρ = 0.9, λ = 1.0.
pub mod defaults {
    /// Default candidate-set size.
    pub const CANDIDATES: usize = 600;
    /// Default influence threshold.
    pub const TAU: f64 = 0.7;
    /// Default behaviour factor.
    pub const RHO: f64 = 0.9;
    /// Default power-law exponent.
    pub const LAMBDA: f64 = 1.0;
    /// Candidate-count sweep of Fig. 8.
    pub const CANDIDATE_SWEEP: [usize; 5] = [200, 400, 600, 800, 1000];
    /// Threshold sweep of Figs. 10 and 12.
    pub const TAU_SWEEP: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];
}

/// Builds a PRIME-LS problem over a dataset with the paper defaults,
/// overriding pieces as needed.
pub fn problem(
    dataset: &Dataset,
    candidates: Vec<pinocchio_geo::Point>,
    pf: PowerLawPf,
    tau: f64,
) -> PrimeLs<PowerLawPf> {
    PrimeLs::builder()
        .objects(dataset.objects().to_vec())
        .candidates(candidates)
        .probability_function(pf)
        .tau(tau)
        .build()
        .expect("experiment problems are well-formed")
}

/// Runs one algorithm and returns `(result, seconds)`.
pub fn timed_solve(problem: &PrimeLs<PowerLawPf>, algorithm: Algorithm) -> (SolveResult, f64) {
    let result = problem.solve(algorithm);
    let secs = result.elapsed.as_secs_f64();
    (result, secs)
}

/// Formats a duration in seconds for table cells.
pub fn fmt_secs(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.1}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.2}s")
    }
}

/// Directory where experiment records are written
/// (`target/experiments`, created on demand).
pub fn experiments_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; hop to the workspace root.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("can create target/experiments");
    dir
}

/// Writes an experiment record as pretty JSON to
/// `target/experiments/<id>.json`.
pub fn write_record(id: &str, value: &serde_json::Value) {
    let path = experiments_dir().join(format!("{id}.json"));
    let body = serde_json::to_string_pretty(value).expect("serialisable record");
    std::fs::write(&path, body).expect("can write experiment record");
    println!("\n[record written to {}]", path.display());
}

/// Mean of a slice (`NaN` on empty input is deliberately avoided).
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Geometric helpers shared by plots: an even sweep of `n` values over
/// `[lo, hi]` inclusive.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// Sums two `Duration`s as seconds — convenience for accumulating
/// timings without overflow worries.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_spacing() {
        let v = linspace(0.0, 1.0, 5);
        assert_eq!(v, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(0.0000005).ends_with("µs"));
        assert!(fmt_secs(0.05).ends_with("ms"));
        assert!(fmt_secs(2.5).ends_with('s'));
    }

    #[test]
    fn dataset_kind_letters() {
        assert_eq!(DatasetKind::Foursquare.letter(), "F");
        assert_eq!(DatasetKind::Gowalla.letter(), "G");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mean_rejects_empty() {
        let _ = mean(&[]);
    }
}
