//! Fixture: total alternatives to panicking.

/// Unwraps an option with a default.
pub fn take(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

/// Surfaces the absence to the caller.
pub fn demand(x: Option<u32>) -> Result<u32, &'static str> {
    x.ok_or("missing")
}

/// Gets with bounds checking.
pub fn off_by_one(v: &[u32], i: usize) -> Option<u32> {
    v.get(i + 1).copied()
}
