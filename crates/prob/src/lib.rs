//! Distance-based influence probability models for PRIME-LS.
//!
//! The paper models the probability that a facility at candidate location
//! `c` influences an object at position `p` as `Pr_c(p) = PF(dist(c, p))`
//! for a monotonically decreasing *probability function* `PF` (§3.1). This
//! crate provides:
//!
//! * the [`ProbabilityFunction`] trait with an analytic inverse — the
//!   inverse is what turns a probability bound into the `minMaxRadius`
//!   distance bound (Definition 5),
//! * the paper's default power-law model `ρ·(d₀ + d)^(−λ)` from Liu et
//!   al.'s check-in study ([`PowerLawPf`]),
//! * the four alternative functions of Fig. 16 — log-sigmoid, convex,
//!   concave and linear ([`alt`]),
//! * cumulative / partial non-influence probability computation with the
//!   early-stopping rule of Lemma 4 ([`cumulative`]),
//! * a block-bounded evaluation kernel over structure-of-arrays position
//!   views — per-block `minDist`/`maxDist` bounds accumulated in log
//!   space, exact refinement only for straddling blocks ([`block`]),
//! * a log-domain kernel over the same views — `Σ ln(1 − PF)` against
//!   `ln(1 − τ)` through a branch-free squared-distance coefficient
//!   table, with a guard band and exact fallback keeping verdicts equal
//!   to the scalar evaluator's ([`logdomain`]),
//! * `minMaxRadius` itself plus the per-`n` memo cache (the HashMap `HM`
//!   of Algorithm 1) in [`radius`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod alt;
pub mod block;
pub mod cumulative;
pub mod logdomain;
pub mod pf;
pub mod radius;

pub use alt::{ConcavePf, ConvexPf, LinearPf, LogsigPf};
pub use block::{BlockScratch, BlockedOutcome, SoaBlocks};
pub use cumulative::{CumulativeProbability, EarlyStopOutcome};
pub use logdomain::{
    ln_one_minus, log_non_influence, LogBlockedOutcome, LogPfTable, LogScratch, LogTileOutcome,
    TileCutoffs,
};
pub use pf::{PowerLawPf, ProbabilityFunction};
pub use radius::{min_max_radius, required_single_position_probability, MinMaxRadiusCache};
