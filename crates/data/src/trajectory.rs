//! Trajectory-based moving objects (the paper's *continuous* case).
//!
//! §3.1: "any continuous moving object also can be discretized as a
//! series of positions by sampling using the same time interval". This
//! module provides such objects for the non-check-in application domains
//! the introduction motivates (wildlife monitoring, vehicles): a
//! correlated random-walk model with home-range attraction and optional
//! migration drift, sampled at a fixed interval.
//!
//! The model is deliberately simple and well-documented rather than
//! species-accurate: step lengths are Rayleigh-distributed (isotropic
//! Gaussian displacement), headings persist with an autocorrelation
//! factor, and a soft pull towards the home point keeps ranges bounded —
//! the standard Ornstein–Uhlenbeck-flavoured home-range walk from the
//! movement-ecology literature.

use crate::object::MovingObject;
use pinocchio_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the correlated random-walk trajectory model.
#[derive(Debug, Clone)]
pub struct TrajectoryConfig {
    /// Number of objects (animals / vehicles).
    pub n_objects: usize,
    /// Sampled positions per object (fixed sampling interval).
    pub samples_per_object: usize,
    /// Frame width (km) for home placement.
    pub frame_width_km: f64,
    /// Frame height (km).
    pub frame_height_km: f64,
    /// Mean step length per sampling interval (km).
    pub step_km: f64,
    /// Heading autocorrelation in `[0, 1)`: 0 = pure random walk,
    /// towards 1 = near-ballistic motion.
    pub heading_persistence: f64,
    /// Home attraction strength in `[0, 1]`: fraction of the
    /// displacement-to-home recovered each step (0 = free walk).
    pub home_attraction: f64,
    /// Per-object constant drift (km per step), e.g. a migration vector.
    pub drift_km: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl TrajectoryConfig {
    /// A home-ranging population (no net migration): think grazing herds
    /// or urban delivery vehicles.
    pub fn home_ranging(n_objects: usize, samples: usize, seed: u64) -> Self {
        TrajectoryConfig {
            n_objects,
            samples_per_object: samples,
            frame_width_km: 60.0,
            frame_height_km: 40.0,
            step_km: 1.0,
            heading_persistence: 0.5,
            home_attraction: 0.15,
            drift_km: (0.0, 0.0),
            seed,
        }
    }

    /// A migrating population drifting north-east across the frame.
    pub fn migrating(n_objects: usize, samples: usize, seed: u64) -> Self {
        TrajectoryConfig {
            drift_km: (0.4, 0.25),
            home_attraction: 0.0,
            ..Self::home_ranging(n_objects, samples, seed)
        }
    }

    fn validate(&self) {
        assert!(self.n_objects > 0, "need at least one object");
        assert!(self.samples_per_object > 0, "need at least one sample");
        assert!(
            self.frame_width_km > 0.0 && self.frame_height_km > 0.0,
            "frame must have positive extent"
        );
        assert!(self.step_km > 0.0, "step length must be positive");
        assert!(
            (0.0..1.0).contains(&self.heading_persistence),
            "heading persistence must be in [0, 1)"
        );
        assert!(
            (0.0..=1.0).contains(&self.home_attraction),
            "home attraction must be in [0, 1]"
        );
    }
}

/// Generates trajectory-discretized moving objects under `config`.
pub fn generate_trajectories(config: &TrajectoryConfig) -> Vec<MovingObject> {
    config.validate();
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.n_objects)
        .map(|id| {
            let home = Point::new(
                rng.gen_range(0.0..config.frame_width_km),
                rng.gen_range(0.0..config.frame_height_km),
            );
            let mut position = home;
            let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let positions: Vec<Point> = (0..config.samples_per_object)
                .map(|_| {
                    // Correlated heading: persist + wrapped noise.
                    let noise = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
                    heading += (1.0 - config.heading_persistence) * noise;
                    // Rayleigh-ish step via two uniforms (Box–Muller radius).
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let step = config.step_km * (-2.0 * u.ln()).sqrt() / 1.2533; // mean-normalised
                    position = Point::new(
                        position.x
                            + step * heading.cos()
                            + config.drift_km.0
                            + config.home_attraction * (home.x - position.x),
                        position.y
                            + step * heading.sin()
                            + config.drift_km.1
                            + config.home_attraction * (home.y - position.y),
                    );
                    position
                })
                .collect();
            MovingObject::new(id as u64, positions)
        })
        .collect()
}

/// Sub-samples a trajectory to every `k`-th position — changing the
/// sampling interval as §6.2 discusses (24–48 positions suffice).
///
/// # Panics
/// Panics when `k == 0`.
pub fn subsample_interval(object: &MovingObject, k: usize) -> MovingObject {
    assert!(k > 0, "sampling stride must be positive");
    let indices: Vec<usize> = (0..object.position_count()).step_by(k).collect();
    object.with_position_subset(&indices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let cfg = TrajectoryConfig::home_ranging(25, 48, 1);
        let objs = generate_trajectories(&cfg);
        assert_eq!(objs.len(), 25);
        for o in &objs {
            assert_eq!(o.position_count(), 48);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TrajectoryConfig::home_ranging(5, 20, 7);
        let a = generate_trajectories(&cfg);
        let b = generate_trajectories(&cfg);
        assert_eq!(a[3].positions(), b[3].positions());
    }

    #[test]
    fn home_ranging_stays_bounded() {
        let cfg = TrajectoryConfig::home_ranging(10, 300, 3);
        let objs = generate_trajectories(&cfg);
        for o in &objs {
            let mbr = o.mbr();
            // With attraction 0.15 and ~1 km steps the stationary spread
            // is ~ step/attraction ≈ 7 km; allow a wide safety margin.
            assert!(
                mbr.width() < 40.0 && mbr.height() < 40.0,
                "home range exploded: {:.1} x {:.1} km",
                mbr.width(),
                mbr.height()
            );
        }
    }

    #[test]
    fn migration_produces_net_displacement() {
        let cfg = TrajectoryConfig::migrating(10, 200, 5);
        let objs = generate_trajectories(&cfg);
        let mut moved = 0;
        for o in &objs {
            let first = o.positions()[0];
            let last = o.positions()[o.position_count() - 1];
            // Drift (0.4, 0.25) km/step over 200 steps ⇒ ~(80, 50) km.
            if last.x - first.x > 30.0 && last.y - first.y > 15.0 {
                moved += 1;
            }
        }
        assert!(moved >= 8, "only {moved}/10 objects migrated");
    }

    #[test]
    fn consecutive_positions_are_close() {
        // Discretized continuity: steps stay within a few step lengths.
        let cfg = TrajectoryConfig::home_ranging(5, 100, 11);
        for o in generate_trajectories(&cfg) {
            for w in o.positions().windows(2) {
                assert!(w[0].euclidean(&w[1]) < 10.0 * cfg.step_km);
            }
        }
    }

    #[test]
    fn subsampling_keeps_every_kth() {
        let cfg = TrajectoryConfig::home_ranging(1, 30, 13);
        let o = &generate_trajectories(&cfg)[0];
        let s = subsample_interval(o, 3);
        assert_eq!(s.position_count(), 10);
        assert_eq!(s.positions()[1], o.positions()[3]);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        let cfg = TrajectoryConfig::home_ranging(1, 10, 17);
        let o = &generate_trajectories(&cfg)[0];
        let _ = subsample_interval(o, 0);
    }
}
