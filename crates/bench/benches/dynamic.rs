//! ablation_dynamic: incremental maintenance (`DynamicPrimeLs`) vs
//! re-solving from scratch after each update — quantifies the paper's
//! future-work scenario.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pinocchio_core::{Algorithm, DynamicPrimeLs, PrimeLs};
use pinocchio_data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
use pinocchio_geo::Point;
use pinocchio_prob::PowerLawPf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn world() -> (Vec<pinocchio_data::MovingObject>, Vec<Point>) {
    let d = SyntheticGenerator::new(GeneratorConfig::small(200, 21)).generate();
    let (_, candidates) = sample_candidate_group(&d, 80, 5);
    (d.objects().to_vec(), candidates)
}

fn bench_append_position(c: &mut Criterion) {
    let (objects, candidates) = world();
    let mut group = c.benchmark_group("ablation_dynamic_append");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    // Fresh state per iteration (iter_batched): mutating one shared state
    // across criterion's iterations would grow the objects unboundedly
    // and measure an ever-larger problem.
    let (base_dynamic, handles, _) = DynamicPrimeLs::from_parts(
        PowerLawPf::paper_default(),
        0.7,
        objects.clone(),
        candidates.clone(),
    );
    group.bench_function("incremental", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter_batched(
            || base_dynamic.clone(),
            |mut dynamic| {
                let h = handles[rng.gen_range(0..handles.len())];
                dynamic.append_position(
                    h,
                    Point::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..28.0)),
                );
                black_box(dynamic.best())
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("recompute", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter_batched(
            || objects.clone(),
            |mut objects| {
                let slot = rng.gen_range(0..objects.len());
                let mut positions = objects[slot].positions().to_vec();
                positions.push(Point::new(
                    rng.gen_range(0.0..40.0),
                    rng.gen_range(0.0..28.0),
                ));
                objects[slot] = pinocchio_data::MovingObject::new(objects[slot].id(), positions);
                let problem = PrimeLs::builder()
                    .objects(objects)
                    .candidates(candidates.clone())
                    .probability_function(PowerLawPf::paper_default())
                    .tau(0.7)
                    .build()
                    .unwrap();
                black_box(problem.solve(Algorithm::PinocchioVo).max_influence)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_candidate_churn(c: &mut Criterion) {
    let (objects, candidates) = world();
    let mut group = c.benchmark_group("ablation_dynamic_candidate");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));

    group.bench_function("incremental_insert_remove", |b| {
        let (mut dynamic, _, _) = DynamicPrimeLs::from_parts(
            PowerLawPf::paper_default(),
            0.7,
            objects.clone(),
            candidates.clone(),
        );
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let h = dynamic.insert_candidate(Point::new(
                rng.gen_range(0.0..40.0),
                rng.gen_range(0.0..28.0),
            ));
            let best = dynamic.best();
            dynamic.remove_candidate(h);
            black_box(best)
        })
    });

    group.bench_function("recompute", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| {
            let mut cands = candidates.clone();
            cands.push(Point::new(
                rng.gen_range(0.0..40.0),
                rng.gen_range(0.0..28.0),
            ));
            let problem = PrimeLs::builder()
                .objects(objects.clone())
                .candidates(cands)
                .probability_function(PowerLawPf::paper_default())
                .tau(0.7)
                .build()
                .unwrap();
            black_box(problem.solve(Algorithm::PinocchioVo).max_influence)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_append_position, bench_candidate_churn);
criterion_main!(benches);
