//! Fixture: undocumented and Relaxed atomic orderings.

use std::sync::atomic::{AtomicU32, Ordering};

/// Publishes without a justification comment.
pub fn publish(x: &AtomicU32) {
    x.store(1, Ordering::Release);
}

/// Counts with deny-by-default Relaxed.
pub fn count(x: &AtomicU32) -> u32 {
    x.fetch_add(1, Ordering::Relaxed)
}
