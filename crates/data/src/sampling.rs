//! Deterministic sub-sampling utilities used across the evaluation.
//!
//! * candidate groups — "we choose 200, 400, …, 1,000 positions from
//!   check-in coordinates as candidate locations by random uniform
//!   sampling" (§6.1) and "we randomly choose 50 different groups of
//!   candidates" (§6.2, Tables 3–4);
//! * object subsets — "2k to 10k objects chosen randomly from Gowalla"
//!   (Fig. 9);
//! * position subsets — "we generate five different instances of it by
//!   choosing 10, …, 50 positions randomly from all its positions"
//!   (Fig. 11b);
//! * position-count groups — Table 5's five groups.

use crate::dataset::Dataset;
use crate::object::MovingObject;
use pinocchio_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's Table 5 grouping boundaries: `[lo, hi)` position-count
/// ranges (the last bound is inclusive of the paper's maximum, 780).
pub const TABLE5_BOUNDS: [(usize, usize); 5] = [(1, 10), (10, 30), (30, 50), (50, 70), (70, 781)];

/// A group of objects sharing a position-count range.
#[derive(Debug, Clone)]
pub struct PositionCountGroup {
    /// Inclusive lower bound on position count.
    pub lo: usize,
    /// Exclusive upper bound on position count.
    pub hi: usize,
    /// Indices into the dataset's object slice.
    pub object_indices: Vec<usize>,
}

/// Buckets the dataset's objects by position count into `[lo, hi)`
/// ranges (Table 5). Objects outside every range are dropped.
pub fn group_by_position_count(
    dataset: &Dataset,
    bounds: &[(usize, usize)],
) -> Vec<PositionCountGroup> {
    bounds
        .iter()
        .map(|&(lo, hi)| {
            assert!(lo < hi, "empty group bound [{lo}, {hi})");
            PositionCountGroup {
                lo,
                hi,
                object_indices: dataset
                    .objects()
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| (lo..hi).contains(&o.position_count()))
                    .map(|(i, _)| i)
                    .collect(),
            }
        })
        .collect()
}

/// Samples `k` distinct indices from `0..n` (partial Fisher–Yates).
fn sample_indices(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} items from {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Uniformly samples `size` distinct venues as a candidate group.
///
/// Returns `(venue_indices, candidate_points)`; the indices let the
/// evaluation look up ground-truth popularity for each candidate.
pub fn sample_candidate_group(
    dataset: &Dataset,
    size: usize,
    seed: u64,
) -> (Vec<usize>, Vec<Point>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let idx = sample_indices(dataset.venues().len(), size, &mut rng);
    let pts = idx.iter().map(|&i| dataset.venues()[i].position).collect();
    (idx, pts)
}

/// Uniformly samples `k` objects (cloned) from the dataset (Fig. 9).
pub fn sample_objects(dataset: &Dataset, k: usize, seed: u64) -> Vec<MovingObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    sample_indices(dataset.objects().len(), k, &mut rng)
        .into_iter()
        .map(|i| dataset.objects()[i].clone())
        .collect()
}

/// Restricts each given object to `k` randomly chosen positions
/// (Fig. 11b / Fig. 13 instance construction). Objects with fewer than
/// `k` positions are skipped.
pub fn resample_positions(objects: &[MovingObject], k: usize, seed: u64) -> Vec<MovingObject> {
    assert!(k >= 1, "objects need at least one position");
    let mut rng = StdRng::seed_from_u64(seed);
    objects
        .iter()
        .filter(|o| o.position_count() >= k)
        .map(|o| {
            let idx = sample_indices(o.position_count(), k, &mut rng);
            o.with_position_subset(&idx)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, SyntheticGenerator};

    fn data() -> Dataset {
        SyntheticGenerator::new(GeneratorConfig::small(120, 7)).generate()
    }

    #[test]
    fn grouping_partitions_by_count() {
        let d = data();
        let groups = group_by_position_count(&d, &TABLE5_BOUNDS);
        assert_eq!(groups.len(), 5);
        for g in &groups {
            for &i in &g.object_indices {
                let n = d.objects()[i].position_count();
                assert!((g.lo..g.hi).contains(&n));
            }
        }
        // Groups are disjoint.
        let total: usize = groups.iter().map(|g| g.object_indices.len()).sum();
        let mut all: Vec<usize> = groups
            .iter()
            .flat_map(|g| g.object_indices.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total);
    }

    #[test]
    fn candidate_groups_are_distinct_venues() {
        let d = data();
        let (idx, pts) = sample_candidate_group(&d, 50, 1);
        assert_eq!(idx.len(), 50);
        assert_eq!(pts.len(), 50);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50, "indices must be distinct");
        for (i, p) in idx.iter().zip(&pts) {
            assert_eq!(d.venues()[*i].position, *p);
        }
    }

    #[test]
    fn candidate_groups_differ_by_seed_but_not_by_call() {
        let d = data();
        let (a, _) = sample_candidate_group(&d, 30, 5);
        let (b, _) = sample_candidate_group(&d, 30, 5);
        let (c, _) = sample_candidate_group(&d, 30, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn object_sampling_clones_distinct_objects() {
        let d = data();
        let sample = sample_objects(&d, 40, 3);
        assert_eq!(sample.len(), 40);
        let mut ids: Vec<u64> = sample.iter().map(|o| o.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 40);
    }

    #[test]
    fn position_resampling_respects_k() {
        let d = data();
        let k = 10;
        let resampled = resample_positions(d.objects(), k, 11);
        assert!(!resampled.is_empty());
        for o in &resampled {
            assert_eq!(o.position_count(), k);
        }
        // Every resampled object had at least k positions originally.
        let eligible = d
            .objects()
            .iter()
            .filter(|o| o.position_count() >= k)
            .count();
        assert_eq!(resampled.len(), eligible);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_rejected() {
        let d = data();
        let _ = sample_candidate_group(&d, d.venues().len() + 1, 0);
    }
}
