//! Load generator for the `pinocchio-serve` query service.
//!
//! Boots a real server over TCP, hammers it with pipelined concurrent
//! clients while a writer connection streams position updates, and
//! measures end-to-end throughput plus the queue-to-response latency
//! histogram — once per configured `batch_max`, so the checked-in
//! record shows what per-epoch request batching buys (shared
//! from-scratch solves, fewer snapshot loads) against the batching-off
//! baseline.
//!
//! The run doubles as an exactness gate: after the load drains, the
//! final `best` and `solve` answers over the wire must **bit-match** a
//! from-scratch computation on a locally mirrored copy of the final
//! state (same updates applied through the same [`World::apply`]
//! codepath), and the server's final counters must satisfy the
//! `ServeStats` accounting identity. Any disagreement aborts the run
//! before a record is written.
//!
//! Emits `BENCH_PR5.json` at the workspace root (checked in, so the PR
//! carries its own evidence) with one row per batch size. Runs at
//! `PINOCCHIO_SCALE=small` in CI (the `serve-smoke` job).

use pinocchio_bench::*;
use pinocchio_core::{try_solve_sharded_timed, Algorithm, EvalKernel, PrimeLs, ShardedPrimeLs};
use pinocchio_data::{sample_candidate_group, MovingObject};
use pinocchio_geo::Point;
use pinocchio_prob::PowerLawPf;
use pinocchio_serve::{serve, MaintenanceMode, ServerConfig, UpdateOp, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread;
use std::time::Instant;

/// Concurrent query connections.
const CLIENTS: usize = 4;
/// Queries sent by each client.
const QUERIES_PER_CLIENT: usize = 200;
/// Requests each client keeps in flight (pipelining keeps the admission
/// queue non-empty, which is what gives `batch_max` something to do).
const PIPELINE: usize = 32;
/// Updates streamed by the writer connection during the query load.
const UPDATES: usize = 50;
/// The benchmarked batch sizes: batching off vs. the server default ×2.
const BATCH_SIZES: [usize; 2] = [1, 32];
/// Candidate-set size (smaller than the solver benches: every `solve`
/// query is a full from-scratch run).
const CANDIDATES: usize = 60;

/// A blocking line client for the serial (writer / verification) roles.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        // Serial request/response round-trips stall ~40 ms each under
        // Nagle + delayed ACK; the harness measures the server, not the
        // kernel's small-write coalescing.
        stream.set_nodelay(true).expect("set nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn round_trip(&mut self, request: &str) -> Value {
        writeln!(self.stream, "{request}").expect("send");
        let mut line = String::new();
        // pinocchio-lint: allow(bounded-io) -- in-process harness reading its own server's length-bounded response lines
        self.reader.read_line(&mut line).expect("recv");
        serde_json::from_str(line.trim_end()).expect("response is JSON")
    }
}

/// Peak resident set size of this process in bytes: `VmHWM` from
/// `/proc/self/status` on Linux, `0` on platforms without that
/// interface. Recorded in every BENCH row so memory regressions show
/// up next to the throughput numbers they trade against.
fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .unwrap_or(0);
                return kb * 1024;
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

fn uint(v: &Value, field: &str) -> u64 {
    v.get(field)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 field {field} in {v}"))
}

fn float_bits(v: &Value, field: &str) -> u64 {
    v.get(field)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("missing f64 field {field} in {v}"))
        .to_bits()
}

/// The query mix one client cycles through; solves rotate over the
/// pruning solvers so batch mates can share runs per (epoch, algo).
fn request_for(i: usize, client: usize, candidate_ids: &[u64]) -> String {
    match i % 4 {
        0 => r#"{"v":1,"op":"best"}"#.to_string(),
        1 => format!(r#"{{"v":1,"op":"top_k","k":{}}}"#, 1 + (i + client) % 5),
        2 => format!(
            r#"{{"v":1,"op":"influence_of","candidate":{}}}"#,
            candidate_ids[(i + client) % candidate_ids.len()]
        ),
        _ => {
            let algo = ["pin-vo", "pin", "pin-join"][(i / 4 + client) % 3];
            format!(r#"{{"v":1,"op":"solve","algo":"{algo}"}}"#)
        }
    }
}

/// Runs the full load against one server instance and returns the row.
fn run_one(initial: &World, batch_max: usize) -> serde_json::Value {
    let handle = serve(
        initial.clone(),
        ServerConfig {
            queue_capacity: 2 * CLIENTS * PIPELINE,
            batch_max,
            workers: 4,
            solve_threads: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();
    let candidate_ids = initial.candidate_ids();
    let object_ids = initial.object_ids();

    println!("  batch_max={batch_max}: {CLIENTS} clients x {QUERIES_PER_CLIENT} queries, {UPDATES} updates");
    let started = Instant::now();

    // Writer: serial acked updates, mirrored locally for the final gate.
    let mut mirror = initial.clone();
    let writer = {
        let mut rng = StdRng::seed_from_u64(0x10AD + batch_max as u64);
        let mut client = Client::connect(addr);
        let ops: Vec<UpdateOp> = (0..UPDATES)
            .map(|_| UpdateOp::AppendPosition {
                object: object_ids[rng.gen_range(0..object_ids.len())],
                position: Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0)),
            })
            .collect();
        for op in &ops {
            mirror.apply(op).expect("mirror accepts its own updates");
        }
        thread::spawn(move || {
            for op in ops {
                let UpdateOp::AppendPosition { object, position } = &op else {
                    unreachable!("writer only appends");
                };
                let ack = client.round_trip(&format!(
                    r#"{{"v":1,"op":"append_position","object":{object},"x":{},"y":{}}}"#,
                    position.x, position.y
                ));
                assert_eq!(
                    ack.get("applied").and_then(Value::as_bool),
                    Some(true),
                    "update rejected: {ack}"
                );
            }
        })
    };

    // Query clients: pipelined chunks keep PIPELINE requests in flight.
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let candidate_ids = candidate_ids.clone();
            thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("set nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
                let mut stream = stream;
                let mut sent = 0usize;
                while sent < QUERIES_PER_CLIENT {
                    let chunk = PIPELINE.min(QUERIES_PER_CLIENT - sent);
                    let mut burst = String::new();
                    for i in sent..sent + chunk {
                        burst.push_str(&request_for(i, c, &candidate_ids));
                        burst.push('\n');
                    }
                    stream.write_all(burst.as_bytes()).expect("send burst");
                    for _ in 0..chunk {
                        let mut line = String::new();
                        // pinocchio-lint: allow(bounded-io) -- in-process harness reading its own server's length-bounded response lines
                        reader.read_line(&mut line).expect("recv");
                        let v: Value =
                            serde_json::from_str(line.trim_end()).expect("response is JSON");
                        assert_eq!(
                            v.get("ok").and_then(Value::as_bool),
                            Some(true),
                            "query failed under load: {v}"
                        );
                    }
                    sent += chunk;
                }
            })
        })
        .collect();

    writer.join().expect("writer thread");
    for client in clients {
        client.join().expect("client thread");
    }
    let seconds = started.elapsed().as_secs_f64();

    // Exactness gate: the served final state must bit-match the mirror.
    let mut check = Client::connect(addr);
    let best = check.round_trip(r#"{"v":1,"op":"best"}"#);
    let (id, loc, inf) = mirror.best().unwrap().expect("non-empty world");
    assert_eq!(uint(&best, "epoch"), UPDATES as u64, "stale final epoch");
    assert_eq!(uint(&best, "candidate"), id, "served best diverged");
    assert_eq!(float_bits(&best, "x"), loc.x.to_bits());
    assert_eq!(float_bits(&best, "y"), loc.y.to_bits());
    assert_eq!(uint(&best, "influence"), u64::from(inf));
    let solved = check.round_trip(r#"{"v":1,"op":"solve","algo":"pin-vo"}"#);
    let outcome = mirror.solve(Algorithm::PinocchioVo, 1).expect("solvable");
    assert_eq!(uint(&solved, "candidate"), outcome.candidate);
    assert_eq!(uint(&solved, "influence"), u64::from(outcome.influence));
    assert_eq!(float_bits(&solved, "x"), outcome.location.x.to_bits());
    assert_eq!(float_bits(&solved, "y"), outcome.location.y.to_bits());

    let ack = check.round_trip(r#"{"v":1,"op":"shutdown"}"#);
    assert_eq!(ack.get("draining").and_then(Value::as_bool), Some(true));
    drop(check);
    let stats = handle.join();

    let queries = (CLIENTS * QUERIES_PER_CLIENT) as u64;
    assert_eq!(stats.shed, 0, "the load must fit the admission queue");
    assert_eq!(stats.updates_applied, UPDATES as u64);
    assert_eq!(stats.queries_completed(), queries + 2);
    assert_eq!(stats.queries_completed(), stats.latency_total());
    assert_eq!(
        stats.lines_received,
        stats.accounted_lines(),
        "accounting identity violated: {stats:?}"
    );

    let throughput = queries as f64 / seconds;
    let shared = stats.queries_solve - stats.solve_runs;
    println!(
        "  batch_max={batch_max}: {throughput:.0} q/s in {}, batches={} jobs/batch={:.2} \
         solves={} shared={} high_water={}",
        fmt_secs(seconds),
        stats.batches,
        stats.batched_jobs as f64 / stats.batches.max(1) as f64,
        stats.solve_runs,
        shared,
        stats.queue_high_water,
    );
    serde_json::json!({
        "batch_max": batch_max,
        "clients": CLIENTS,
        "pipeline": PIPELINE,
        "queries": queries,
        "updates": UPDATES,
        "seconds": seconds,
        "throughput_qps": throughput,
        "batches": stats.batches,
        "batched_jobs": stats.batched_jobs,
        "jobs_per_batch": stats.batched_jobs as f64 / stats.batches.max(1) as f64,
        "queries_solve": stats.queries_solve,
        "solve_runs": stats.solve_runs,
        "shared_solves": shared,
        "epochs_published": stats.epochs_published,
        "queue_high_water": stats.queue_high_water,
        "peak_rss_bytes": peak_rss_bytes(),
        "stats": stats.to_json(),
    })
}

/// Side of the square frame (km) for the update-heavy scenario. Much
/// larger than the trajectories (~±1 km around a per-object centre), so
/// the per-object NIB regions cover a small fraction of the frame and
/// spatial pruning has room to work — the regime the paper's datasets
/// are in (city-sized frames, venue-sized activity regions).
const UPDATE_FRAME_KM: f64 = 400.0;

/// Generates an update-heavy op stream (~70 % position appends, the
/// rest churn on both populations) plus the setup ops that build the
/// initial world. Every op is valid at its point in the stream.
fn update_heavy_ops(
    objects: usize,
    candidates: usize,
    op_count: usize,
) -> (Vec<UpdateOp>, Vec<UpdateOp>) {
    let mut rng = StdRng::seed_from_u64(0x9126);
    let random_center = |rng: &mut StdRng| -> Point {
        Point::new(
            rng.gen_range(0.0..UPDATE_FRAME_KM),
            rng.gen_range(0.0..UPDATE_FRAME_KM),
        )
    };
    let jitter = |rng: &mut StdRng, center: Point| -> Point {
        Point::new(
            center.x + rng.gen_range(-1.0..1.0),
            center.y + rng.gen_range(-1.0..1.0),
        )
    };

    // Live bookkeeping so removals / appends always target live ids.
    let mut live_objects: Vec<(u64, Point)> = Vec::new();
    let mut live_candidates: Vec<u64> = Vec::new();
    let mut next_object = 0u64;
    let mut next_candidate = 0u64;

    let mut setup = Vec::with_capacity(objects + candidates);
    for _ in 0..candidates {
        setup.push(UpdateOp::InsertCandidate {
            candidate: next_candidate,
            location: random_center(&mut rng),
        });
        live_candidates.push(next_candidate);
        next_candidate += 1;
    }
    for _ in 0..objects {
        let center = random_center(&mut rng);
        let n = rng.gen_range(3..9);
        setup.push(UpdateOp::InsertObject {
            object: next_object,
            positions: (0..n).map(|_| jitter(&mut rng, center)).collect(),
        });
        live_objects.push((next_object, center));
        next_object += 1;
    }

    let mut ops = Vec::with_capacity(op_count);
    while ops.len() < op_count {
        match rng.gen_range(0..100) {
            0..=69 => {
                let (object, center) = live_objects[rng.gen_range(0..live_objects.len())];
                ops.push(UpdateOp::AppendPosition {
                    object,
                    position: jitter(&mut rng, center),
                });
            }
            70..=79 => {
                let center = random_center(&mut rng);
                let n = rng.gen_range(3..9);
                ops.push(UpdateOp::InsertObject {
                    object: next_object,
                    positions: (0..n).map(|_| jitter(&mut rng, center)).collect(),
                });
                live_objects.push((next_object, center));
                next_object += 1;
            }
            80..=84 if live_objects.len() > objects / 2 => {
                let (object, _) = live_objects.swap_remove(rng.gen_range(0..live_objects.len()));
                ops.push(UpdateOp::RemoveObject { object });
            }
            85..=94 => {
                ops.push(UpdateOp::InsertCandidate {
                    candidate: next_candidate,
                    location: random_center(&mut rng),
                });
                live_candidates.push(next_candidate);
                next_candidate += 1;
            }
            _ if live_candidates.len() > candidates / 2 => {
                let candidate =
                    live_candidates.swap_remove(rng.gen_range(0..live_candidates.len()));
                ops.push(UpdateOp::RemoveCandidate { candidate });
            }
            _ => {} // removal floor hit: reroll
        }
    }
    (setup, ops)
}

/// Applies the stream and returns the wall-clock seconds it took.
fn apply_timed(world: &mut World, ops: &[UpdateOp]) -> f64 {
    let started = Instant::now();
    for op in ops {
        world.apply(op).expect("op stream is valid");
    }
    started.elapsed().as_secs_f64()
}

/// The update-heavy scenario: the same op stream through the delta path
/// and the full-scan reference path, exactness-gated three ways (static
/// re-solve, cross-mode bit-match, from-scratch world rebuilt from the
/// final live sets), plus the epoch-publish (world-clone) cost the
/// serve writer pays per published batch.
fn run_update_heavy() -> serde_json::Value {
    // Candidate sets are venue-scale (the paper's datasets carry
    // thousands of venues): the full-scan path pays O(m) per append,
    // the delta path only pays for the NIB neighbourhood.
    let (objects, candidates, op_count) = if is_small_scale() {
        (160, 600, 4_000)
    } else {
        (400, 1_200, 12_000)
    };
    println!(
        "update-heavy: {objects} objects x {candidates} candidates, {op_count} ops, \
         frame {UPDATE_FRAME_KM} km"
    );
    let (setup, ops) = update_heavy_ops(objects, candidates, op_count);
    let appends = ops
        .iter()
        .filter(|op| matches!(op, UpdateOp::AppendPosition { .. }))
        .count();

    let mut delta = World::new(defaults::TAU);
    for op in &setup {
        delta.apply(op).expect("setup is valid");
    }
    let mut full = delta.clone();
    full.set_maintenance_mode(MaintenanceMode::FullScan);

    let delta_secs = apply_timed(&mut delta, &ops);
    let full_secs = apply_timed(&mut full, &ops);
    let delta_ups = op_count as f64 / delta_secs;
    let full_ups = op_count as f64 / full_secs;
    let speedup = full_secs / delta_secs;
    println!(
        "  delta: {delta_ups:.0} updates/s ({}), full-scan: {full_ups:.0} updates/s ({}), \
         speedup {speedup:.1}x [{appends} appends]",
        fmt_secs(delta_secs),
        fmt_secs(full_secs),
    );

    // Exactness gates. (1) Both paths against a from-scratch static
    // solve of their own final state (also audits the cached argmax and
    // the challenger bound).
    delta.verify_against_static();
    full.verify_against_static();
    // (2) The two paths against each other, bit-for-bit in wire-id
    // space: same live sets, same influence for every candidate, same
    // optimum, same from-scratch solve outcome.
    assert_eq!(delta.best().unwrap(), full.best().unwrap(), "best diverged");
    assert_eq!(delta.candidate_ids(), full.candidate_ids());
    assert_eq!(delta.object_ids(), full.object_ids());
    for id in delta.candidate_ids() {
        assert_eq!(
            delta.influence_of(id).unwrap(),
            full.influence_of(id).unwrap(),
            "influence of candidate {id} diverged"
        );
    }
    let a = delta.solve(Algorithm::PinocchioVo, 1).expect("solvable");
    let b = full.solve(Algorithm::PinocchioVo, 1).expect("solvable");
    assert_eq!(a.candidate, b.candidate, "solve winner diverged");
    assert_eq!(a.influence, b.influence);
    assert_eq!(a.location.x.to_bits(), b.location.x.to_bits());
    assert_eq!(a.location.y.to_bits(), b.location.y.to_bits());

    // (3) Epoch-publish cost: the serve writer clones the whole world
    // once per published epoch. With structurally shared position logs
    // this copies Arc spines, not trajectories.
    let reps = 200u32;
    let clone_started = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(delta.clone());
    }
    let epoch_clone_us = clone_started.elapsed().as_secs_f64() * 1e6 / f64::from(reps);
    println!("  epoch publish (world clone): {epoch_clone_us:.0} us");

    // The tentpole's acceptance gate: sustained update throughput must
    // be at least 2x the pre-delta (full-scan) path on this stream.
    assert!(
        speedup >= 2.0,
        "delta maintenance must sustain >= 2x the full-scan update rate, got {speedup:.2}x \
         ({delta_ups:.0} vs {full_ups:.0} updates/s)"
    );

    serde_json::json!({
        "objects": objects,
        "candidates": candidates,
        "ops": op_count,
        "appends": appends,
        "frame_km": UPDATE_FRAME_KM,
        "delta_seconds": delta_secs,
        "delta_updates_per_sec": delta_ups,
        "full_scan_seconds": full_secs,
        "full_scan_updates_per_sec": full_ups,
        "speedup": speedup,
        "epoch_clone_us": epoch_clone_us,
        "peak_rss_bytes": peak_rss_bytes(),
        "final_objects": delta.object_count(),
        "final_candidates": delta.candidate_count(),
    })
}

/// Serialises one update op to its wire request line.
fn update_request(op: &UpdateOp) -> String {
    match op {
        UpdateOp::InsertObject { object, positions } => {
            let coords: Vec<String> = positions
                .iter()
                .map(|p| format!("[{},{}]", p.x, p.y))
                .collect();
            format!(
                r#"{{"v":1,"op":"insert_object","object":{object},"positions":[{}]}}"#,
                coords.join(",")
            )
        }
        UpdateOp::AppendPosition { object, position } => format!(
            r#"{{"v":1,"op":"append_position","object":{object},"x":{},"y":{}}}"#,
            position.x, position.y
        ),
        UpdateOp::RemoveObject { object } => {
            format!(r#"{{"v":1,"op":"remove_object","object":{object}}}"#)
        }
        UpdateOp::InsertCandidate {
            candidate,
            location,
        } => format!(
            r#"{{"v":1,"op":"insert_candidate","candidate":{candidate},"x":{},"y":{}}}"#,
            location.x, location.y
        ),
        UpdateOp::RemoveCandidate { candidate } => {
            format!(r#"{{"v":1,"op":"remove_candidate","candidate":{candidate}}}"#)
        }
    }
}

/// Steady-state in-flight request count for the flash-crowd client.
const FLASH_STEADY_PIPELINE: usize = 4;
/// Burst in-flight request count — 10x the steady rate, and well past
/// the admission queue, so the server must shed rather than buffer.
const FLASH_BURST_PIPELINE: usize = 40;
/// Admission-queue capacity for the flash-crowd server (deliberately
/// small: the burst is the overload, shedding is the correct answer).
const FLASH_QUEUE_CAPACITY: usize = 8;
/// The flash-crowd server runs partitioned, so every accepted answer
/// during the overload exercises the shard merge.
const FLASH_SHARDS: usize = 4;

/// The flash-crowd scenario: a 4-shard server under an update-heavy
/// stream takes query bursts at 10x the steady in-flight rate against
/// a small admission queue. Bursts are all `solve` requests (fresh
/// epochs keep the per-epoch memo cold), so the queue overflows and the
/// server sheds with typed `overloaded` rejections — never by blocking
/// or dropping connections. After the load drains, the final served
/// answers must bit-match a from-scratch **unsharded** mirror, and the
/// counter identity must hold with the client-observed shed count.
fn run_flash_crowd() -> serde_json::Value {
    let (objects, candidates, op_count) = if is_small_scale() {
        (120, 40, 600)
    } else {
        (240, 60, 1_500)
    };
    println!(
        "flash-crowd: {objects} objects x {candidates} candidates, {op_count} updates, \
         {FLASH_SHARDS} shards, burst {FLASH_BURST_PIPELINE} vs steady {FLASH_STEADY_PIPELINE} \
         in flight, queue {FLASH_QUEUE_CAPACITY}"
    );
    let (setup, ops) = update_heavy_ops(objects, candidates, op_count);
    let mut world = World::new(defaults::TAU);
    for op in &setup {
        world.apply(op).expect("setup is valid");
    }
    // The exactness mirror stays unsharded: every final served answer
    // must bit-match this from-scratch single-world computation.
    let mut mirror = world.clone();
    for op in &ops {
        mirror.apply(op).expect("op stream is valid");
    }

    let handle = serve(
        world,
        ServerConfig {
            queue_capacity: FLASH_QUEUE_CAPACITY,
            batch_max: 4,
            workers: 1,
            solve_threads: 1,
            shards: FLASH_SHARDS,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();
    let started = Instant::now();

    // Writer: the update-heavy stream, serially acked so the final
    // epoch is exactly `op_count`.
    let writer = {
        let ops = ops.clone();
        let mut client = Client::connect(addr);
        thread::spawn(move || {
            for op in &ops {
                let ack = client.round_trip(&update_request(op));
                assert_eq!(
                    ack.get("applied").and_then(Value::as_bool),
                    Some(true),
                    "update rejected: {ack}"
                );
            }
        })
    };

    // Query client: alternating steady phases (mixed reads at a gentle
    // in-flight rate) and flash crowds (pipelined all-`solve` bursts).
    let crowd = thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("set nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut stream = stream;
        let mut sent = 0u64;
        let mut accepted = 0u64;
        let mut shed = 0u64;
        let drain = |reader: &mut BufReader<TcpStream>, n: usize| {
            let (mut ok, mut over) = (0u64, 0u64);
            for _ in 0..n {
                let mut line = String::new();
                // pinocchio-lint: allow(bounded-io) -- in-process harness reading its own server's length-bounded response lines
                reader.read_line(&mut line).expect("recv");
                let v: Value = serde_json::from_str(line.trim_end()).expect("response is JSON");
                if v.get("ok").and_then(Value::as_bool) == Some(true) {
                    ok += 1;
                } else {
                    assert_eq!(
                        v.get("error")
                            .and_then(|e| e.get("code"))
                            .and_then(Value::as_str),
                        Some("overloaded"),
                        "only shed rejections are acceptable under burst: {v}"
                    );
                    over += 1;
                }
            }
            (ok, over)
        };
        for round in 0..10usize {
            // Steady phase: mixed reads, small pipeline.
            for chunk in 0..FLASH_STEADY_PIPELINE {
                let mut burst = String::new();
                for i in 0..FLASH_STEADY_PIPELINE {
                    burst.push_str(&match (round + chunk + i) % 3 {
                        0 => r#"{"v":1,"op":"best"}"#.to_string(),
                        1 => format!(r#"{{"v":1,"op":"top_k","k":{}}}"#, 1 + i % 5),
                        _ => r#"{"v":1,"op":"solve","algo":"pin-vo"}"#.to_string(),
                    });
                    burst.push('\n');
                }
                stream.write_all(burst.as_bytes()).expect("send steady");
                let (ok, over) = drain(&mut reader, FLASH_STEADY_PIPELINE);
                sent += FLASH_STEADY_PIPELINE as u64;
                accepted += ok;
                shed += over;
            }
            // Flash crowd: one pipelined burst of fresh solves.
            let mut burst = String::new();
            for i in 0..FLASH_BURST_PIPELINE {
                let algo = ["pin-vo", "pin", "pin-join"][i % 3];
                burst.push_str(&format!(r#"{{"v":1,"op":"solve","algo":"{algo}"}}"#));
                burst.push('\n');
            }
            stream.write_all(burst.as_bytes()).expect("send burst");
            let (ok, over) = drain(&mut reader, FLASH_BURST_PIPELINE);
            sent += FLASH_BURST_PIPELINE as u64;
            accepted += ok;
            shed += over;
        }
        (sent, accepted, shed)
    });

    writer.join().expect("writer thread");
    let (sent, accepted, shed) = crowd.join().expect("crowd thread");
    let seconds = started.elapsed().as_secs_f64();
    assert_eq!(
        accepted + shed,
        sent,
        "every request gets exactly one response"
    );
    assert!(shed > 0, "the burst must overflow the queue (shed = 0)");
    assert!(accepted > 0, "steady load must still be served");

    // Exactness gate: the 4-shard server's post-drain answers bit-match
    // the unsharded mirror.
    let mut check = Client::connect(addr);
    let best = check.round_trip(r#"{"v":1,"op":"best"}"#);
    let (id, loc, inf) = mirror.best().unwrap().expect("non-empty world");
    assert_eq!(uint(&best, "epoch"), op_count as u64, "stale final epoch");
    assert_eq!(uint(&best, "candidate"), id, "served best diverged");
    assert_eq!(float_bits(&best, "x"), loc.x.to_bits());
    assert_eq!(float_bits(&best, "y"), loc.y.to_bits());
    assert_eq!(uint(&best, "influence"), u64::from(inf));
    let solved = check.round_trip(r#"{"v":1,"op":"solve","algo":"pin-vo"}"#);
    let outcome = mirror.solve(Algorithm::PinocchioVo, 1).expect("solvable");
    assert_eq!(uint(&solved, "candidate"), outcome.candidate);
    assert_eq!(uint(&solved, "influence"), u64::from(outcome.influence));
    assert_eq!(float_bits(&solved, "x"), outcome.location.x.to_bits());
    assert_eq!(float_bits(&solved, "y"), outcome.location.y.to_bits());

    let ack = check.round_trip(r#"{"v":1,"op":"shutdown"}"#);
    assert_eq!(ack.get("draining").and_then(Value::as_bool), Some(true));
    drop(check);
    let stats = handle.join();

    assert_eq!(stats.shed, shed, "server and client disagree on shed count");
    assert_eq!(stats.updates_applied, op_count as u64);
    assert_eq!(stats.queries_completed(), accepted + 2);
    assert_eq!(
        stats.lines_received,
        stats.accounted_lines(),
        "accounting identity violated: {stats:?}"
    );
    println!(
        "  {sent} queries: {accepted} served, {shed} shed in {} \
         ({:.0}% of the load survived the crowd)",
        fmt_secs(seconds),
        100.0 * accepted as f64 / sent as f64,
    );
    serde_json::json!({
        "objects": objects,
        "candidates": candidates,
        "updates": op_count,
        "shards": FLASH_SHARDS,
        "queue_capacity": FLASH_QUEUE_CAPACITY,
        "steady_pipeline": FLASH_STEADY_PIPELINE,
        "burst_pipeline": FLASH_BURST_PIPELINE,
        "queries_sent": sent,
        "queries_served": accepted,
        "queries_shed": shed,
        "seconds": seconds,
        "peak_rss_bytes": peak_rss_bytes(),
        "stats": stats.to_json(),
    })
}

/// Frame side (km) for the sharded-scaling world — the update-heavy
/// geometry (city-sized frame, venue-sized trajectories) where spatial
/// pruning leaves the per-shard filter sweep as the dominant cost.
const SCALING_FRAME_KM: f64 = 400.0;
/// Candidate-set size for the scaling run (object-heavy regime: the
/// candidate broadcast is small, the object partition is what scales).
const SCALING_CANDIDATES: usize = 60;
/// Shard counts compared by the scaling gate.
const SCALING_SHARDS: [usize; 2] = [1, 4];
/// Acceptance floor: 4-shard critical-path speedup over 1 shard.
const SCALING_FLOOR: f64 = 1.8;

/// The sharded-scaling scenario: an object-heavy PIN-VO solve at 1 vs 4
/// shards, bit-identity-gated against the unsharded sequential solver
/// and floor-gated on **critical-path** speedup.
///
/// Phase timings are measured with `threads = 1` so each shard's filter
/// cost is uncontended and clean; the critical path — `max(per-shard
/// prepare) + coordinator` — is the latency an N-core (or N-process)
/// deployment pays, which single-core wall clock cannot show (on one
/// core the phases serialise and wall clock is shard-count-invariant).
fn run_sharded_scaling() -> serde_json::Value {
    let objects_n: u64 = if is_small_scale() { 20_000 } else { 120_000 };
    println!(
        "sharded-scaling: {objects_n} objects x {SCALING_CANDIDATES} candidates, \
         frame {SCALING_FRAME_KM} km, shards {SCALING_SHARDS:?}"
    );
    let mut rng = StdRng::seed_from_u64(0x5AAD);
    let objects: Vec<MovingObject> = (0..objects_n)
        .map(|id| {
            let cx = rng.gen_range(0.0..SCALING_FRAME_KM);
            let cy = rng.gen_range(0.0..SCALING_FRAME_KM);
            let n = rng.gen_range(3..9);
            let positions = (0..n)
                .map(|_| Point::new(cx + rng.gen_range(-1.0..1.0), cy + rng.gen_range(-1.0..1.0)))
                .collect();
            MovingObject::new(id, positions)
        })
        .collect();
    let candidates: Vec<Point> = (0..SCALING_CANDIDATES)
        .map(|_| {
            Point::new(
                rng.gen_range(0.0..SCALING_FRAME_KM),
                rng.gen_range(0.0..SCALING_FRAME_KM),
            )
        })
        .collect();

    let reference = PrimeLs::builder()
        .objects(objects.clone())
        .candidates(candidates.clone())
        .probability_function(PowerLawPf::paper_default())
        .tau(defaults::TAU)
        .build()
        .expect("scaling problem is well-formed")
        .solve(Algorithm::PinocchioVo);

    let mut rows = Vec::new();
    let mut critical_paths = Vec::new();
    for &shards in &SCALING_SHARDS {
        let sharded = ShardedPrimeLs::partition(
            objects.clone(),
            candidates.clone(),
            PowerLawPf::paper_default(),
            defaults::TAU,
            EvalKernel::Scalar,
            shards,
        )
        .expect("partition is well-formed");
        // Best of three: partition once, solve repeatedly.
        let mut best: Option<(f64, f64, f64, f64)> = None;
        for _ in 0..3 {
            let (result, timings) = try_solve_sharded_timed(&sharded, Algorithm::PinocchioVo, 1)
                .expect("sharded solve succeeds");
            assert_eq!(
                result.best_candidate, reference.best_candidate,
                "winner diverged at {shards} shard(s)"
            );
            assert_eq!(result.max_influence, reference.max_influence);
            assert_eq!(
                result.best_location.x.to_bits(),
                reference.best_location.x.to_bits()
            );
            assert_eq!(
                result.best_location.y.to_bits(),
                reference.best_location.y.to_bits()
            );
            let critical = timings.critical_path_seconds();
            let max_prepare = timings.prepare_seconds.iter().copied().fold(0.0, f64::max);
            if best.is_none_or(|(c, ..)| critical < c) {
                best = Some((
                    critical,
                    result.elapsed.as_secs_f64(),
                    max_prepare,
                    timings.coordinator_seconds,
                ));
            }
        }
        let (critical, wall, max_prepare, coordinator) = best.expect("three trials ran");
        println!(
            "  shards={shards}: critical path {} (max prepare {}, coordinator {}), \
             single-core wall {}",
            fmt_secs(critical),
            fmt_secs(max_prepare),
            fmt_secs(coordinator),
            fmt_secs(wall),
        );
        critical_paths.push(critical);
        rows.push(serde_json::json!({
            "shards": shards,
            "critical_path_seconds": critical,
            "max_prepare_seconds": max_prepare,
            "coordinator_seconds": coordinator,
            "single_core_wall_seconds": wall,
        }));
    }

    let speedup = critical_paths[0] / critical_paths[1];
    println!("  critical-path speedup at 4 shards: {speedup:.2}x");
    // The tentpole's acceptance gate: partitioning must shorten the
    // solve-phase critical path by at least the floor.
    assert!(
        speedup >= SCALING_FLOOR,
        "4-shard critical path must be >= {SCALING_FLOOR}x shorter than 1-shard, got {speedup:.2}x"
    );
    serde_json::json!({
        "objects": objects_n,
        "candidates": SCALING_CANDIDATES,
        "frame_km": SCALING_FRAME_KM,
        "algorithm": "pin-vo",
        "rows": rows,
        "critical_path_speedup": speedup,
        "speedup_floor": SCALING_FLOOR,
        "peak_rss_bytes": peak_rss_bytes(),
    })
}

/// Heat-map grid resolution for the offline descent-vs-naive race.
const HEATMAP_RESOLUTION: u32 = 128;
/// Acceptance floor: the quadtree descent must rasterise the grid at
/// least this many times faster than per-tile dense evaluation.
const HEATMAP_FLOOR: f64 = 5.0;
/// Tiles requested by `top_region` probes.
const HEATMAP_TOP_K: usize = 10;

/// The PR 10 heat-map scenario, in two phases.
///
/// **Offline race**: one frozen problem, one grid. The quadtree descent
/// (`try_heatmap`) against the naive dense grid — every tile centre
/// evaluated against every object — at identical resolution. Gated on
/// bit-exactness (every descent sample equals the naive count; every
/// band contains it) and on the [`HEATMAP_FLOOR`] speedup, both
/// asserted before a record is written. `try_top_region` rides along
/// and must bit-match the dense grid's `(influence desc, index asc)`
/// argmax.
///
/// **Wire phase**: the same world behind a live server; a client
/// streams `heatmap` and `top_region` queries while a writer races
/// position updates through the ingest path. Every streamed batch must
/// be epoch-consistent with its terminal line and the offsets must
/// tile the grid exactly.
fn run_heatmap() -> serde_json::Value {
    let (objects_n, resolution) = if is_small_scale() {
        (160usize, 64u32)
    } else {
        (400usize, HEATMAP_RESOLUTION)
    };
    println!(
        "heatmap: {objects_n} objects, {resolution}x{resolution} grid, \
         frame {UPDATE_FRAME_KM} km, floor {HEATMAP_FLOOR}x"
    );
    let mut rng = StdRng::seed_from_u64(0x0EA7);
    let objects: Vec<MovingObject> = (0..objects_n as u64)
        .map(|id| {
            let cx = rng.gen_range(0.0..UPDATE_FRAME_KM);
            let cy = rng.gen_range(0.0..UPDATE_FRAME_KM);
            let n = rng.gen_range(3..9);
            let positions = (0..n)
                .map(|_| Point::new(cx + rng.gen_range(-1.0..1.0), cy + rng.gen_range(-1.0..1.0)))
                .collect();
            MovingObject::new(id, positions)
        })
        .collect();
    let candidates: Vec<Point> = (0..8)
        .map(|_| {
            Point::new(
                rng.gen_range(0.0..UPDATE_FRAME_KM),
                rng.gen_range(0.0..UPDATE_FRAME_KM),
            )
        })
        .collect();
    let problem = PrimeLs::builder()
        .objects(objects.clone())
        .candidates(candidates.clone())
        .probability_function(PowerLawPf::paper_default())
        .tau(defaults::TAU)
        .build()
        .expect("heat-map problem is well-formed");

    // Descent: best of three, exactness re-checked on every trial.
    let mut descent_secs = f64::INFINITY;
    let mut heatmap = None;
    for _ in 0..3 {
        let started = Instant::now();
        let h = pinocchio_heatmap::try_heatmap(&problem, resolution, None).expect("heatmap");
        descent_secs = descent_secs.min(started.elapsed().as_secs_f64());
        heatmap = Some(h);
    }
    let heatmap = heatmap.expect("three trials ran");
    let n_tiles = heatmap.tiles.len();

    // Naive dense grid: the same centres (taken from the descent's own
    // geometry, so the comparison is centre-for-centre), every object
    // evaluated per centre.
    let naive_started = Instant::now();
    let mut naive = vec![0u32; n_tiles];
    {
        let mut eval = problem.pair_eval();
        let mut scratch = pinocchio_core::SolveStats::default();
        for (idx, slot) in naive.iter_mut().enumerate() {
            let center = heatmap.tile_center(idx);
            for object in 0..problem.objects().len() {
                if eval.influences(&center, object, true, &mut scratch) {
                    *slot += 1;
                }
            }
        }
    }
    let naive_secs = naive_started.elapsed().as_secs_f64();

    // Exactness gates: samples are the ground truth, bands contain it.
    for (idx, (tile, &exact)) in heatmap.tiles.iter().zip(&naive).enumerate() {
        assert_eq!(tile.sample, exact, "descent sample diverged at tile {idx}");
        assert!(
            tile.lo <= exact && exact <= tile.hi,
            "band [{}, {}] misses the exact count {exact} at tile {idx}",
            tile.lo,
            tile.hi
        );
    }
    let speedup = naive_secs / descent_secs;
    let refined = heatmap.stats.cells_refined;
    println!(
        "  descent {} vs naive {} = {speedup:.1}x, {refined} ambiguous tiles of {n_tiles} \
         ({} IA cells, {} NIB cells)",
        fmt_secs(descent_secs),
        fmt_secs(naive_secs),
        heatmap.stats.cells_resolved_ia,
        heatmap.stats.cells_resolved_nib,
    );

    // top_region must bit-match the dense grid's argmax.
    let top_started = Instant::now();
    let region = pinocchio_heatmap::try_top_region(&problem, HEATMAP_TOP_K, resolution, None)
        .expect("top_region");
    let top_region_secs = top_started.elapsed().as_secs_f64();
    let mut ranked: Vec<(usize, u32)> = naive.iter().copied().enumerate().collect();
    ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(HEATMAP_TOP_K);
    assert_eq!(region.cells.len(), ranked.len());
    for (cell, (tile, influence)) in region.cells.iter().zip(ranked) {
        assert_eq!(cell.tile, tile, "top_region picked a different tile");
        assert_eq!(cell.influence, influence);
    }
    println!(
        "  top_region k={HEATMAP_TOP_K}: {} ({} pairs validated)",
        fmt_secs(top_region_secs),
        region.stats.validated_pairs,
    );

    // The acceptance gate, before any record is written.
    assert!(
        speedup >= HEATMAP_FLOOR,
        "quadtree descent must be >= {HEATMAP_FLOOR}x faster than the dense grid, \
         got {speedup:.2}x ({descent_secs:.4}s vs {naive_secs:.4}s)"
    );

    // Wire phase: streamed tiles racing live updates.
    let world = World::from_parts(objects, candidates, defaults::TAU).expect("world");
    let object_ids = world.object_ids();
    let handle = serve(
        world,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = handle.addr();
    let wire_updates = 50usize;
    let writer = {
        let mut rng = StdRng::seed_from_u64(0x0EA8);
        let mut client = Client::connect(addr);
        thread::spawn(move || {
            for _ in 0..wire_updates {
                let object = object_ids[rng.gen_range(0..object_ids.len())];
                let ack = client.round_trip(&format!(
                    r#"{{"v":1,"op":"append_position","object":{object},"x":{},"y":{}}}"#,
                    rng.gen_range(0.0..UPDATE_FRAME_KM),
                    rng.gen_range(0.0..UPDATE_FRAME_KM),
                ));
                assert_eq!(ack.get("applied").and_then(Value::as_bool), Some(true));
            }
        })
    };
    let wire_queries = 24usize;
    let wire_resolution = 64u32;
    let wire_started = Instant::now();
    let mut tiles_streamed = 0u64;
    {
        let mut client = Client::connect(addr);
        for q in 0..wire_queries {
            if q % 2 == 0 {
                writeln!(
                    client.stream,
                    r#"{{"v":1,"id":{q},"op":"heatmap","resolution":{wire_resolution}}}"#
                )
                .expect("send");
                let mut offset = 0u64;
                loop {
                    let mut line = String::new();
                    // pinocchio-lint: allow(bounded-io) -- in-process harness reading its own server's length-bounded response lines
                    client.reader.read_line(&mut line).expect("recv");
                    let v: Value = serde_json::from_str(line.trim_end()).expect("batch is JSON");
                    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
                    assert_eq!(uint(&v, "id"), q as u64, "id echoed on every line");
                    if v.get("done").and_then(Value::as_bool) == Some(true) {
                        assert_eq!(uint(&v, "tiles_total"), offset, "stream tiled the grid");
                        assert_eq!(
                            offset,
                            u64::from(wire_resolution) * u64::from(wire_resolution)
                        );
                        break;
                    }
                    assert_eq!(uint(&v, "offset"), offset, "batches arrive in order");
                    let batch = v.get("tiles").and_then(Value::as_array).expect("tiles");
                    offset += batch.len() as u64;
                    tiles_streamed += batch.len() as u64;
                }
            } else {
                let v = client.round_trip(&format!(
                    r#"{{"v":1,"op":"top_region","k":{HEATMAP_TOP_K},"resolution":{wire_resolution}}}"#
                ));
                assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
                let cells = v.get("cells").and_then(Value::as_array).expect("cells");
                assert_eq!(cells.len(), HEATMAP_TOP_K);
            }
        }
        writer.join().expect("writer thread");
        let ack = client.round_trip(r#"{"v":1,"op":"shutdown"}"#);
        assert_eq!(ack.get("draining").and_then(Value::as_bool), Some(true));
    }
    let wire_secs = wire_started.elapsed().as_secs_f64();
    let stats = handle.join();
    assert_eq!(stats.queries_heatmap, (wire_queries / 2) as u64);
    assert_eq!(stats.queries_top_region, (wire_queries / 2) as u64);
    assert_eq!(stats.updates_applied, wire_updates as u64);
    assert_eq!(
        stats.lines_received,
        stats.accounted_lines(),
        "accounting identity violated: {stats:?}"
    );
    println!(
        "  wire: {wire_queries} queries ({tiles_streamed} tiles streamed) racing \
         {wire_updates} updates in {}",
        fmt_secs(wire_secs),
    );

    serde_json::json!({
        "objects": objects_n,
        "frame_km": UPDATE_FRAME_KM,
        "resolution": resolution,
        "tiles": n_tiles,
        "descent_seconds": descent_secs,
        "naive_seconds": naive_secs,
        "speedup": speedup,
        "speedup_floor": HEATMAP_FLOOR,
        "cells_resolved_ia": heatmap.stats.cells_resolved_ia,
        "cells_resolved_nib": heatmap.stats.cells_resolved_nib,
        "cells_refined": refined,
        "validated_pairs": heatmap.stats.validated_pairs,
        "top_region_k": HEATMAP_TOP_K,
        "top_region_seconds": top_region_secs,
        "wire": {
            "queries": wire_queries,
            "resolution": wire_resolution,
            "tiles_streamed": tiles_streamed,
            "updates": wire_updates,
            "seconds": wire_secs,
            "stats": stats.to_json(),
        },
        "peak_rss_bytes": peak_rss_bytes(),
    })
}

fn main() {
    let d = dataset(DatasetKind::Foursquare);
    let m = CANDIDATES.min(d.venues().len());
    let (_, candidates) = sample_candidate_group(&d, m, 8);
    let world = World::from_parts(d.objects().to_vec(), candidates, defaults::TAU)
        .expect("well-formed world");
    println!(
        "load-gen: {} objects x {} candidates, tau={}",
        world.object_count(),
        world.candidate_count(),
        defaults::TAU
    );

    let rows: Vec<serde_json::Value> = BATCH_SIZES
        .iter()
        .map(|&batch_max| run_one(&world, batch_max))
        .collect();

    let record = serde_json::json!({
        "id": "load_gen_pr5",
        "scale": if is_small_scale() { "small" } else { "full" },
        "tau": defaults::TAU,
        "candidates": m,
        "rows": rows,
    });
    write_record("load_gen_pr5", &record);

    // Checked-in copy at the workspace root so the PR carries the
    // measured numbers alongside the code.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR5.json");
    let body = serde_json::to_string_pretty(&record).expect("serialisable record");
    std::fs::write(&root, body + "\n").expect("can write BENCH_PR5.json");
    println!("[record written to {}]", root.display());

    // The PR 6 update-heavy scenario: delta-validated maintenance vs the
    // full-scan reference, gated on exactness and the 2x speedup floor.
    let update_heavy = run_update_heavy();
    let record = serde_json::json!({
        "id": "load_gen_pr6",
        "scale": if is_small_scale() { "small" } else { "full" },
        "tau": defaults::TAU,
        "update_heavy": update_heavy,
    });
    write_record("load_gen_pr6", &record);
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR6.json");
    let body = serde_json::to_string_pretty(&record).expect("serialisable record");
    std::fs::write(&root, body + "\n").expect("can write BENCH_PR6.json");
    println!("[record written to {}]", root.display());

    // The PR 9 sharded scenarios: the flash-crowd overload against a
    // 4-shard server (shed + merge exactness) and the object-partition
    // scaling gate (critical-path speedup floor, bit-identity).
    let flash_crowd = run_flash_crowd();
    let sharded_scaling = run_sharded_scaling();
    let record = serde_json::json!({
        "id": "load_gen_pr9",
        "scale": if is_small_scale() { "small" } else { "full" },
        "tau": defaults::TAU,
        "flash_crowd": flash_crowd,
        "sharded_scaling": sharded_scaling,
    });
    write_record("load_gen_pr9", &record);
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR9.json");
    let body = serde_json::to_string_pretty(&record).expect("serialisable record");
    std::fs::write(&root, body + "\n").expect("can write BENCH_PR9.json");
    println!("[record written to {}]", root.display());

    // The PR 10 heat-map scenario: quadtree descent vs the naive dense
    // grid (exactness-gated, 5x floor) plus streamed tiles over the
    // wire racing live updates.
    let heatmap = run_heatmap();
    let record = serde_json::json!({
        "id": "load_gen_pr10",
        "scale": if is_small_scale() { "small" } else { "full" },
        "tau": defaults::TAU,
        "heatmap": heatmap,
    });
    write_record("load_gen_pr10", &record);
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR10.json");
    let body = serde_json::to_string_pretty(&record).expect("serialisable record");
    std::fs::write(&root, body + "\n").expect("can write BENCH_PR10.json");
    println!("[record written to {}]", root.display());
}
