//! Fig. 11 — effect of the number of positions `n`.
//!
//! (a) Gowalla-like objects in their natural Table-5 groups: PIN-VO
//!     runtime relative to NA, and the maximum influence as a share of
//!     the group — the paper finds the n ≥ 70 group reaches > 60 % while
//!     the [1,10) group only ~20 %, and the optimal locations of the
//!     five groups lie within ~0.7 km of each other.
//! (b) The same 1,999 heavy objects (n ≥ 50) restricted to 10..50
//!     randomly chosen positions.

use pinocchio_bench::*;
use pinocchio_core::Algorithm;
use pinocchio_data::{
    group_by_position_count, resample_positions, sample_candidate_group, TABLE5_BOUNDS,
};
use pinocchio_eval::Table;
use pinocchio_geo::Point;
use pinocchio_prob::PowerLawPf;

fn pairwise_distances(points: &[Point]) -> (f64, f64) {
    let (mut sum, mut max, mut count) = (0.0f64, 0.0f64, 0usize);
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let d = points[i].euclidean(&points[j]);
            sum += d;
            max = max.max(d);
            count += 1;
        }
    }
    (sum / count.max(1) as f64, max)
}

fn main() {
    let d = dataset(DatasetKind::Gowalla);
    let (_, candidates) =
        sample_candidate_group(&d, defaults::CANDIDATES.min(d.venues().len()), 11);

    // ---- (a) natural groups -------------------------------------------
    let groups = group_by_position_count(&d, &TABLE5_BOUNDS);
    let mut a = Table::new(
        "Fig. 11a (G): natural position-count groups",
        &[
            "group",
            "objects",
            "NA",
            "PIN-VO",
            "speedup",
            "max inf",
            "inf share %",
        ],
    );
    let mut optima = Vec::new();
    let mut rec_a = Vec::new();
    for g in &groups {
        if g.object_indices.len() < 2 {
            continue;
        }
        let objects: Vec<_> = g
            .object_indices
            .iter()
            .map(|&i| d.objects()[i].clone())
            .collect();
        let count = objects.len();
        let sub = d.with_objects(objects);
        let p = problem(
            &sub,
            candidates.clone(),
            PowerLawPf::paper_default(),
            defaults::TAU,
        );
        let (na, na_secs) = timed_solve(&p, Algorithm::Naive);
        let (vo, vo_secs) = timed_solve(&p, Algorithm::PinocchioVo);
        assert_eq!(na.max_influence, vo.max_influence);
        optima.push(vo.best_location);
        let share = vo.max_influence as f64 / count as f64 * 100.0;
        a.push_row(vec![
            format!("[{}, {})", g.lo, g.hi),
            count.to_string(),
            fmt_secs(na_secs),
            fmt_secs(vo_secs),
            format!("{:.1}x", na_secs / vo_secs.max(1e-9)),
            vo.max_influence.to_string(),
            format!("{share:.1}"),
        ]);
        rec_a.push(serde_json::json!({
            "group": [g.lo, g.hi], "objects": count,
            "na_secs": na_secs, "vo_secs": vo_secs,
            "max_influence": vo.max_influence, "influence_share": share / 100.0,
            "best_location": [vo.best_location.x, vo.best_location.y],
        }));
    }
    println!("{a}");
    let (avg_d, max_d) = pairwise_distances(&optima);
    println!(
        "optimal locations across groups: avg pairwise distance {avg_d:.2} km, max {max_d:.2} km\n"
    );

    // ---- (b) resampled instances --------------------------------------
    let heavy: Vec<_> = d
        .objects()
        .iter()
        .filter(|o| o.position_count() >= 50)
        .cloned()
        .collect();
    println!("(b) uses {} objects with ≥ 50 positions\n", heavy.len());
    let mut b = Table::new(
        "Fig. 11b (G): same objects restricted to n positions",
        &["n", "NA", "PIN-VO", "speedup", "max inf", "inf share %"],
    );
    let mut optima_b = Vec::new();
    let mut rec_b = Vec::new();
    for (i, n) in [10usize, 20, 30, 40, 50].into_iter().enumerate() {
        let objects = resample_positions(&heavy, n, 300 + i as u64);
        let count = objects.len();
        let sub = d.with_objects(objects);
        let p = problem(
            &sub,
            candidates.clone(),
            PowerLawPf::paper_default(),
            defaults::TAU,
        );
        let (na, na_secs) = timed_solve(&p, Algorithm::Naive);
        let (vo, vo_secs) = timed_solve(&p, Algorithm::PinocchioVo);
        assert_eq!(na.max_influence, vo.max_influence);
        optima_b.push(vo.best_location);
        let share = vo.max_influence as f64 / count as f64 * 100.0;
        b.push_row(vec![
            n.to_string(),
            fmt_secs(na_secs),
            fmt_secs(vo_secs),
            format!("{:.1}x", na_secs / vo_secs.max(1e-9)),
            vo.max_influence.to_string(),
            format!("{share:.1}"),
        ]);
        rec_b.push(serde_json::json!({
            "n": n, "na_secs": na_secs, "vo_secs": vo_secs,
            "max_influence": vo.max_influence, "influence_share": share / 100.0,
            "best_location": [vo.best_location.x, vo.best_location.y],
        }));
    }
    println!("{b}");
    let (avg_b, max_b) = pairwise_distances(&optima_b);
    println!("optimal locations across n: avg pairwise distance {avg_b:.2} km, max {max_b:.2} km");

    write_record(
        "fig11_effect_n",
        &serde_json::json!({
            "natural_groups": rec_a,
            "natural_optima_distance_km": { "avg": avg_d, "max": max_d },
            "resampled": rec_b,
            "resampled_optima_distance_km": { "avg": avg_b, "max": max_b },
        }),
    );
}
