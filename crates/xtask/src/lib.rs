//! In-repo static-analysis engine for the PINOCCHIO workspace.
//!
//! `cargo run -p xtask -- lint` runs a line/token-level audit over every
//! `.rs` file under `crates/` and `src/` (vendored shims and test
//! fixtures excluded) and fails on any *deny* diagnostic. The rules
//! encode the domain invariants PR 1 made load-bearing — invariants
//! clippy cannot check:
//!
//! | rule id            | guards against |
//! |--------------------|----------------|
//! | `panic-path`       | `unwrap`/`expect`/`panic!`-family and arithmetic indexing in non-test library code of `core`, `prob`, `geo`, `index` |
//! | `float-soundness`  | `==`/`!=` against float literals, `f64::NAN` literals, bare `partial_cmp(..).unwrap()` |
//! | `atomic-ordering`  | undocumented `Ordering::*` uses; `Relaxed` is deny-by-default |
//! | `crate-hygiene`    | crate roots missing `#![forbid(unsafe_code)]` / `#![deny(missing_docs)]` |
//! | `stats-accounting` | solver entry points that stop referencing `SolveStats` |
//!
//! Every rule can be silenced per line with
//! `// pinocchio-lint: allow(<rule>) -- <justification>`; the
//! justification is mandatory — an allow without one is itself a deny
//! diagnostic (`suppression-hygiene`) and suppresses nothing.
//!
//! The engine is deliberately token-level, not AST-level: the workspace
//! builds offline, so the linter cannot depend on `syn` or a rustc
//! plugin. Stripping comments and string literals before matching keeps
//! the token scan honest; the per-rule corner cases are documented in
//! [`rules`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diag;
pub mod engine;
pub mod rules;
pub mod source;

pub use diag::{Diagnostic, Severity};
pub use engine::{collect_files, lint, LintConfig, LintReport};
pub use source::SourceFile;
