//! Condvar fixture: the canonical predicate-rechecking loop with the
//! returned guard rebound each iteration.

use std::sync::{Condvar, Mutex};

pub struct Gate {
    ready: Mutex<bool>,
    signal: Condvar,
}

impl Gate {
    pub fn await_ready(&self) {
        let mut ready = self.ready.lock().unwrap_or_else(|e| e.into_inner());
        while !*ready {
            ready = self.signal.wait(ready).unwrap_or_else(|e| e.into_inner());
        }
        *ready = false;
    }
}
