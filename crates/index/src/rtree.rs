//! A point R-tree built from scratch.
//!
//! Follows Guttman's original design (SIGMOD 1984) restricted to point
//! data, which is all PINOCCHIO needs: candidates are points, and the
//! moving-object side deliberately does *not* use a hierarchical index
//! (§4.3 explains why — activity MBRs overlap so heavily that R-tree
//! pruning degenerates there).
//!
//! * **Storage** — nodes live in a flat arena (`Vec<Node>`), children are
//!   referenced by index; leaf entries are `(Point, T)` pairs stored
//!   inline in the leaf.
//! * **Insertion** — `ChooseLeaf` descends by least area enlargement
//!   (ties: smaller area), splits with Guttman's *quadratic* algorithm,
//!   and adjusts MBRs upward, growing the root as needed.
//! * **Bulk load** — Sort-Tile-Recursive (Leutenegger et al.), yielding a
//!   packed tree; used by the solvers which build the candidate index
//!   once per run.
//! * **Queries** — rectangle, circle, and generic two-predicate region
//!   queries (a node-level admission test plus an exact point test),
//!   which is how the influence-arcs and non-influence-boundary range
//!   queries of Algorithm 2 are executed. Best-first nearest-neighbour /
//!   k-NN supports the BRNN* baseline.

use crate::stats::QueryStats;
use pinocchio_geo::{Mbr, Point};

/// Default maximum entries per node — the paper's setting (§6.1: "The
/// maximum number of elements in each R-tree node is 8").
pub const DEFAULT_MAX_ENTRIES: usize = 8;

/// Arena identifier of a node.
type NodeId = usize;

#[derive(Debug, Clone)]
enum NodeKind<T> {
    Internal { children: Vec<NodeId> },
    Leaf { items: Vec<(Point, T)> },
}

#[derive(Debug, Clone)]
struct Node<T> {
    mbr: Option<Mbr>, // None only for an empty root leaf
    kind: NodeKind<T>,
}

impl<T> Node<T> {
    fn empty_leaf() -> Self {
        Node {
            mbr: None,
            kind: NodeKind::Leaf { items: Vec::new() },
        }
    }
}

/// A dynamic point R-tree storing `(Point, T)` pairs.
///
/// `T` is the per-entry payload — in the solvers, a dense candidate
/// identifier indexing side arrays of influence counters, exactly like the
/// paper's leaf-resident `inf(c)` counters but kept out of the tree so the
/// tree itself is immutable during a solve.
///
/// ```
/// use pinocchio_geo::Point;
/// use pinocchio_index::RTree;
///
/// let tree = RTree::bulk_load(vec![
///     (Point::new(0.0, 0.0), "library"),
///     (Point::new(3.0, 4.0), "cafe"),
///     (Point::new(9.0, 9.0), "gym"),
/// ]);
/// let (_, nearest, dist) = tree.nearest_neighbor(&Point::new(2.5, 4.0)).unwrap();
/// assert_eq!(*nearest, "cafe");
/// assert!(dist < 1.0);
///
/// let mut in_range = Vec::new();
/// tree.query_circle(&Point::new(0.0, 0.0), 5.0, |_, name| in_range.push(*name));
/// in_range.sort();
/// assert_eq!(in_range, ["cafe", "library"]);
/// ```
#[derive(Debug, Clone)]
pub struct RTree<T> {
    nodes: Vec<Node<T>>,
    root: NodeId,
    max_entries: usize,
    min_entries: usize,
    len: usize,
}

impl<T: Clone> RTree<T> {
    /// Creates an empty tree with the paper's default node capacity (8).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MAX_ENTRIES)
    }

    /// Creates an empty tree with a custom maximum node fan-out
    /// (`min` fan-out is `max/2`, Guttman's recommendation).
    ///
    /// # Panics
    /// Panics if `max_entries < 2`.
    pub fn with_capacity(max_entries: usize) -> Self {
        assert!(max_entries >= 2, "R-tree fan-out must be at least 2");
        RTree {
            nodes: vec![Node::empty_leaf()],
            root: 0,
            max_entries,
            min_entries: (max_entries / 2).max(1),
            len: 0,
        }
    }

    /// Bulk loads a packed tree with Sort-Tile-Recursive.
    ///
    /// Equivalent contents to inserting one by one, but with near-minimal
    /// overlap and ~100 % leaf fill. This is what the solvers use: the
    /// candidate set is known up front.
    pub fn bulk_load(items: Vec<(Point, T)>) -> Self {
        Self::bulk_load_with_capacity(items, DEFAULT_MAX_ENTRIES)
    }

    /// STR bulk load with a custom node capacity.
    pub fn bulk_load_with_capacity(mut items: Vec<(Point, T)>, max_entries: usize) -> Self {
        assert!(max_entries >= 2, "R-tree fan-out must be at least 2");
        let mut tree = Self::with_capacity(max_entries);
        if items.is_empty() {
            return tree;
        }
        tree.len = items.len();
        tree.nodes.clear();

        // --- STR leaf packing -------------------------------------------
        // Number of leaves needed, arranged in ~√ slices by x, each slice
        // sorted by y and chopped into runs of `max_entries`.
        let n = items.len();
        let cap = max_entries as f64;
        let leaf_count = (n as f64 / cap).ceil();
        #[allow(clippy::cast_possible_truncation)]
        // in [1, √leaves]: leaves fit memory, so far below 2^52
        let slice_count = leaf_count.sqrt().ceil().max(1.0) as usize;
        #[allow(clippy::cast_possible_truncation)] // in [1, n]: n is an in-memory item count
        let slice_size = (n as f64 / slice_count as f64).ceil().max(1.0) as usize; // points per x-slice
                                                                                   // Points per slice must be a multiple of max_entries worth of leaves.
        #[allow(clippy::cast_possible_truncation)]
        // at most slice_size rounded up to one leaf: an in-memory count
        let per_slice = ((slice_size as f64 / cap).ceil() * cap) as usize;

        items.sort_by(|a, b| a.0.x.total_cmp(&b.0.x));
        let mut leaf_ids: Vec<NodeId> = Vec::new();
        for slice in items.chunks_mut(per_slice.max(max_entries)) {
            slice.sort_by(|a, b| a.0.y.total_cmp(&b.0.y));
            for run in slice.chunks(max_entries) {
                let mbr = Mbr::from_points(&run.iter().map(|(p, _)| *p).collect::<Vec<_>>());
                let id = tree.nodes.len();
                tree.nodes.push(Node {
                    mbr,
                    kind: NodeKind::Leaf {
                        items: run.to_vec(),
                    },
                });
                leaf_ids.push(id);
            }
        }

        // --- pack upper levels ------------------------------------------
        let mut level = leaf_ids;
        while level.len() > 1 {
            let mut next: Vec<NodeId> = Vec::new();
            for group in level.chunks(max_entries) {
                let mbr = group
                    .iter()
                    .filter_map(|&id| tree.nodes[id].mbr)
                    .reduce(|a, b| a.union(&b));
                let id = tree.nodes.len();
                tree.nodes.push(Node {
                    mbr,
                    kind: NodeKind::Internal {
                        children: group.to_vec(),
                    },
                });
                next.push(id);
            }
            level = next;
        }
        tree.root = level[0];
        tree
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The MBR of all stored points, or `None` when empty.
    pub fn bounds(&self) -> Option<Mbr> {
        self.nodes[self.root].mbr
    }

    /// Height of the tree (a lone leaf has height 1).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut id = self.root;
        loop {
            match &self.nodes[id].kind {
                NodeKind::Leaf { .. } => return h,
                NodeKind::Internal { children } => {
                    h += 1;
                    id = children[0];
                }
            }
        }
    }

    /// Inserts one `(point, payload)` pair (Guttman insertion with
    /// quadratic split).
    pub fn insert(&mut self, point: Point, payload: T) {
        assert!(point.is_finite(), "cannot index a non-finite point");
        self.len += 1;
        let leaf = self.choose_leaf(point);
        match &mut self.nodes[leaf].kind {
            NodeKind::Leaf { items } => items.push((point, payload)),
            // pinocchio-lint: allow(panic-path) -- choose_leaf descends until it hits a Leaf by construction; an Internal here is a structural bug
            NodeKind::Internal { .. } => unreachable!("choose_leaf returns a leaf"),
        }
        self.recompute_mbr(leaf);
        self.split_upwards(leaf);
    }

    /// Descends from the root picking the child needing least enlargement.
    /// Returns the leaf's id; also records the path for upward adjustment.
    fn choose_leaf(&mut self, point: Point) -> NodeId {
        let target = Mbr::from_point(point);
        let mut id = self.root;
        let mut path: Vec<NodeId> = Vec::new();
        loop {
            match &self.nodes[id].kind {
                NodeKind::Leaf { .. } => {
                    // Expand MBRs along the recorded path.
                    for &anc in &path {
                        let m: Option<Mbr> = self.nodes[anc].mbr;
                        self.nodes[anc].mbr = Some(m.map_or(target, |m| m.union(&target)));
                    }
                    return id;
                }
                NodeKind::Internal { children } => {
                    path.push(id);
                    let mut best = children[0];
                    let mut best_enl = f64::INFINITY;
                    let mut best_area = f64::INFINITY;
                    for &ch in children {
                        // pinocchio-lint: allow(panic-path) -- every non-root node gains an MBR on insertion (recompute_mbr); check_invariants verifies this
                        let m = self.nodes[ch].mbr.expect("non-root nodes have MBRs");
                        let enl = m.enlargement(&target);
                        let area = m.area();
                        // total_cmp, not `==`: keeps the enlargement
                        // tie-break deterministic under NaN-free totals.
                        let better = match enl.total_cmp(&best_enl) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Equal => area < best_area,
                            std::cmp::Ordering::Greater => false,
                        };
                        if better {
                            best = ch;
                            best_enl = enl;
                            best_area = area;
                        }
                    }
                    id = best;
                }
            }
        }
    }

    fn recompute_mbr(&mut self, id: NodeId) {
        let mbr = match &self.nodes[id].kind {
            NodeKind::Leaf { items } => {
                Mbr::from_points(&items.iter().map(|(p, _)| *p).collect::<Vec<_>>())
            }
            NodeKind::Internal { children } => children
                .iter()
                .filter_map(|&c| self.nodes[c].mbr)
                .reduce(|a, b| a.union(&b)),
        };
        self.nodes[id].mbr = mbr;
    }

    /// Splits `id` if overfull, then walks up re-splitting ancestors.
    ///
    /// A parent map is rebuilt lazily: the tree is shallow (fan-out ≥ 2)
    /// and insertion is not on any hot path of the solvers (they bulk
    /// load), so clarity wins over bookkeeping.
    fn split_upwards(&mut self, mut id: NodeId) {
        loop {
            let overfull = match &self.nodes[id].kind {
                NodeKind::Leaf { items } => items.len() > self.max_entries,
                NodeKind::Internal { children } => children.len() > self.max_entries,
            };
            if !overfull {
                return;
            }
            let sibling = self.split_node(id);
            match self.parent_of(id) {
                Some(parent) => {
                    if let NodeKind::Internal { children } = &mut self.nodes[parent].kind {
                        children.push(sibling);
                    }
                    self.recompute_mbr(parent);
                    id = parent;
                }
                None => {
                    // Root split: grow a new root above both halves.
                    let new_root = self.nodes.len();
                    self.nodes.push(Node {
                        mbr: None,
                        kind: NodeKind::Internal {
                            children: vec![id, sibling],
                        },
                    });
                    self.recompute_mbr(new_root);
                    self.root = new_root;
                    return;
                }
            }
        }
    }

    fn parent_of(&self, id: NodeId) -> Option<NodeId> {
        if id == self.root {
            return None;
        }
        // Linear arena scan; see `split_upwards` for why this is fine.
        (0..self.nodes.len()).find(|&i| match &self.nodes[i].kind {
            NodeKind::Internal { children } => children.contains(&id),
            NodeKind::Leaf { .. } => false,
        })
    }

    /// Guttman quadratic split. Returns the id of the new sibling.
    fn split_node(&mut self, id: NodeId) -> NodeId {
        enum Items<T> {
            Leaf(Vec<(Point, T)>),
            Internal(Vec<NodeId>),
        }
        let items = match &mut self.nodes[id].kind {
            NodeKind::Leaf { items } => Items::Leaf(std::mem::take(items)),
            NodeKind::Internal { children } => Items::Internal(std::mem::take(children)),
        };
        match items {
            Items::Leaf(items) => {
                let mbrs: Vec<Mbr> = items.iter().map(|(p, _)| Mbr::from_point(*p)).collect();
                let (a_idx, b_idx) = quadratic_partition(&mbrs, self.min_entries);
                let take = |idx: &[usize]| idx.iter().map(|&i| items[i].clone()).collect();
                let (a_items, b_items): (Vec<_>, Vec<_>) = (take(&a_idx), take(&b_idx));
                self.nodes[id].kind = NodeKind::Leaf { items: a_items };
                self.recompute_mbr(id);
                let sib = self.nodes.len();
                self.nodes.push(Node {
                    mbr: None,
                    kind: NodeKind::Leaf { items: b_items },
                });
                self.recompute_mbr(sib);
                sib
            }
            Items::Internal(children) => {
                let mbrs: Vec<Mbr> = children
                    .iter()
                    // pinocchio-lint: allow(panic-path) -- split only runs on overflowing nodes, whose children all carry MBRs
                    .map(|&c| self.nodes[c].mbr.expect("child has MBR"))
                    .collect();
                let (a_idx, b_idx) = quadratic_partition(&mbrs, self.min_entries);
                let take = |idx: &[usize]| idx.iter().map(|&i| children[i]).collect();
                let (a_ch, b_ch): (Vec<_>, Vec<_>) = (take(&a_idx), take(&b_idx));
                self.nodes[id].kind = NodeKind::Internal { children: a_ch };
                self.recompute_mbr(id);
                let sib = self.nodes.len();
                self.nodes.push(Node {
                    mbr: None,
                    kind: NodeKind::Internal { children: b_ch },
                });
                self.recompute_mbr(sib);
                sib
            }
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Visits every entry whose point lies inside `rect` (boundaries
    /// included). Returns instrumentation counters.
    pub fn query_rect(&self, rect: &Mbr, mut visit: impl FnMut(&Point, &T)) -> QueryStats {
        self.query_region(
            |node_mbr| node_mbr.intersects(rect),
            |p| rect.contains_point(p),
            &mut visit,
        )
    }

    /// Visits every entry within `radius` of `center` (closed disc).
    /// A negative radius matches nothing (squaring it naively would
    /// silently query the disc of `|radius|` instead).
    pub fn query_circle(
        &self,
        center: &Point,
        radius: f64,
        mut visit: impl FnMut(&Point, &T),
    ) -> QueryStats {
        if radius < 0.0 {
            return QueryStats::default();
        }
        let r_sq = radius * radius;
        self.query_region(
            |node_mbr| node_mbr.min_dist_sq(center) <= r_sq,
            |p| p.euclidean_sq(center) <= r_sq,
            &mut visit,
        )
    }

    /// Generic region query.
    ///
    /// * `admit_node(mbr)` must return `true` whenever the node's MBR
    ///   *could* contain a matching point (false positives allowed, false
    ///   negatives not — they would lose results).
    /// * `matches(point)` is the exact predicate.
    ///
    /// This is how Algorithm 2's influence-arcs and non-influence-boundary
    /// range queries run against the candidate R-tree: the region shapes
    /// (disc intersections, rounded rectangles) are not rectangles, so the
    /// tree exposes predicate-based traversal rather than materialised
    /// geometry.
    pub fn query_region(
        &self,
        mut admit_node: impl FnMut(&Mbr) -> bool,
        mut matches: impl FnMut(&Point) -> bool,
        visit: &mut impl FnMut(&Point, &T),
    ) -> QueryStats {
        let mut stats = QueryStats::default();
        if self.len == 0 {
            return stats;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            let Some(mbr) = node.mbr else { continue };
            if !admit_node(&mbr) {
                continue;
            }
            stats.nodes_visited += 1;
            match &node.kind {
                NodeKind::Internal { children } => stack.extend_from_slice(children),
                NodeKind::Leaf { items } => {
                    for (p, t) in items {
                        stats.entries_tested += 1;
                        if matches(p) {
                            stats.matches += 1;
                            visit(p, t);
                        }
                    }
                }
            }
        }
        stats
    }

    /// Nearest entry to `query`, or `None` when empty. Best-first search
    /// over node `minDist`s — the classic Hjaltason–Samet traversal.
    pub fn nearest_neighbor(&self, query: &Point) -> Option<(Point, &T, f64)> {
        self.k_nearest_neighbors(query, 1).pop()
    }

    /// The `k` entries nearest to `query`, ascending by distance.
    /// Ties are broken arbitrarily; fewer than `k` are returned when the
    /// tree is smaller than `k`.
    pub fn k_nearest_neighbors(&self, query: &Point, k: usize) -> Vec<(Point, &T, f64)> {
        use std::collections::BinaryHeap;

        if k == 0 || self.len == 0 {
            return Vec::new();
        }

        enum Item<'a, T> {
            Node(NodeId),
            Entry(Point, &'a T),
        }

        /// Min-heap entry ordered by squared distance only; `Item` does
        /// not participate in the ordering.
        struct HeapEntry<'a, T> {
            d_sq: f64,
            item: Item<'a, T>,
        }
        impl<T> PartialEq for HeapEntry<'_, T> {
            fn eq(&self, other: &Self) -> bool {
                // Defined through the total order so PartialEq and Ord
                // can never disagree (a float `==` would diverge on the
                // NaN/-0.0 edge cases).
                self.cmp(other).is_eq()
            }
        }
        impl<T> Eq for HeapEntry<'_, T> {}
        impl<T> PartialOrd for HeapEntry<'_, T> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for HeapEntry<'_, T> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reversed: BinaryHeap is a max-heap, we want nearest first.
                other.d_sq.total_cmp(&self.d_sq)
            }
        }

        let mut heap: BinaryHeap<HeapEntry<T>> = BinaryHeap::new();
        if let Some(mbr) = self.nodes[self.root].mbr {
            heap.push(HeapEntry {
                d_sq: mbr.min_dist_sq(query),
                item: Item::Node(self.root),
            });
        }
        let mut out = Vec::with_capacity(k);
        while let Some(HeapEntry { d_sq, item }) = heap.pop() {
            match item {
                Item::Node(id) => match &self.nodes[id].kind {
                    NodeKind::Internal { children } => {
                        for &c in children {
                            if let Some(m) = self.nodes[c].mbr {
                                heap.push(HeapEntry {
                                    d_sq: m.min_dist_sq(query),
                                    item: Item::Node(c),
                                });
                            }
                        }
                    }
                    NodeKind::Leaf { items } => {
                        for (p, t) in items {
                            heap.push(HeapEntry {
                                d_sq: p.euclidean_sq(query),
                                item: Item::Entry(*p, t),
                            });
                        }
                    }
                },
                Item::Entry(p, t) => {
                    out.push((p, t, d_sq.sqrt()));
                    if out.len() == k {
                        break;
                    }
                }
            }
        }
        out
    }

    /// Iterates over all stored entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Point, &T)> {
        self.nodes.iter().flat_map(|n| match &n.kind {
            NodeKind::Leaf { items } => items.iter().map(|(p, t)| (p, t)).collect::<Vec<_>>(),
            NodeKind::Internal { .. } => Vec::new(),
        })
    }

    /// Checks structural invariants; used by tests and debug assertions.
    ///
    /// Verifies that every node's MBR tightly bounds its contents, every
    /// non-root node respects fan-out limits, and all leaves sit at the
    /// same depth. Returns the number of entries reachable from the root.
    pub fn check_invariants(&self) -> usize {
        fn walk<T>(
            tree: &RTree<T>,
            id: NodeId,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> usize
        where
            T: Clone,
        {
            let node = &tree.nodes[id];
            match &node.kind {
                NodeKind::Leaf { items } => {
                    if let Some(ld) = *leaf_depth {
                        assert_eq!(ld, depth, "leaves at different depths");
                    } else {
                        *leaf_depth = Some(depth);
                    }
                    if !items.is_empty() {
                        let want =
                            Mbr::from_points(&items.iter().map(|(p, _)| *p).collect::<Vec<_>>())
                                // pinocchio-lint: allow(panic-path) -- assert-based self-check: from_points is Some for the non-empty slice guarded above
                                .expect("non-empty leaf has an MBR");
                        assert_eq!(node.mbr, Some(want), "leaf MBR not tight");
                    }
                    if id != tree.root {
                        assert!(items.len() <= tree.max_entries, "overfull leaf");
                        assert!(!items.is_empty(), "empty non-root leaf");
                    }
                    items.len()
                }
                NodeKind::Internal { children } => {
                    assert!(!children.is_empty(), "internal node with no children");
                    assert!(children.len() <= tree.max_entries, "overfull internal node");
                    let mut count = 0;
                    let mut mbr: Option<Mbr> = None;
                    for &c in children {
                        count += walk(tree, c, depth + 1, leaf_depth);
                        // pinocchio-lint: allow(panic-path) -- assert-based self-check: non-root nodes always carry MBRs (this is among the invariants being checked)
                        let child_mbr = tree.nodes[c].mbr.expect("child MBR");
                        mbr = Some(mbr.map_or(child_mbr, |m| m.union(&child_mbr)));
                    }
                    assert_eq!(node.mbr, mbr, "internal MBR not tight");
                    count
                }
            }
        }
        let mut leaf_depth = None;
        let count = walk(self, self.root, 0, &mut leaf_depth);
        assert_eq!(count, self.len, "len out of sync with contents");
        count
    }
}

impl<T: Clone> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> FromIterator<(Point, T)> for RTree<T> {
    fn from_iter<I: IntoIterator<Item = (Point, T)>>(iter: I) -> Self {
        Self::bulk_load(iter.into_iter().collect())
    }
}

/// Guttman's quadratic split: pick the pair of seeds wasting the most
/// area if grouped together, then greedily assign the remaining entries
/// to the group whose MBR grows least, while guaranteeing both groups
/// reach `min_entries`. Returns the two index sets.
fn quadratic_partition(mbrs: &[Mbr], min_entries: usize) -> (Vec<usize>, Vec<usize>) {
    let n = mbrs.len();
    debug_assert!(n >= 2);

    // PickSeeds: maximise union area − area_a − area_b.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let waste = mbrs[i].union(&mbrs[j]).area() - mbrs[i].area() - mbrs[j].area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    let mut group_a = vec![seed_a];
    let mut group_b = vec![seed_b];
    let mut mbr_a = mbrs[seed_a];
    let mut mbr_b = mbrs[seed_b];
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != seed_a && i != seed_b).collect();

    while let Some(pos) = {
        if remaining.is_empty() {
            None
        } else if group_a.len() + remaining.len() == min_entries {
            // Must dump everything into A to satisfy the minimum.
            group_a.extend(remaining.drain(..).inspect(|&i| {
                mbr_a = mbr_a.union(&mbrs[i]);
            }));
            None
        } else if group_b.len() + remaining.len() == min_entries {
            group_b.extend(remaining.drain(..).inspect(|&i| {
                mbr_b = mbr_b.union(&mbrs[i]);
            }));
            None
        } else {
            // PickNext: the entry with the greatest preference difference.
            let (mut best_pos, mut best_diff) = (0, f64::NEG_INFINITY);
            for (pos, &i) in remaining.iter().enumerate() {
                let d_a = mbr_a.enlargement(&mbrs[i]);
                let d_b = mbr_b.enlargement(&mbrs[i]);
                let diff = (d_a - d_b).abs();
                if diff > best_diff {
                    best_diff = diff;
                    best_pos = pos;
                }
            }
            Some(best_pos)
        }
    } {
        let i = remaining.swap_remove(pos);
        let d_a = mbr_a.enlargement(&mbrs[i]);
        let d_b = mbr_b.enlargement(&mbrs[i]);
        let to_a = match d_a.partial_cmp(&d_b) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => mbr_a.area() <= mbr_b.area(),
        };
        if to_a {
            group_a.push(i);
            mbr_a = mbr_a.union(&mbrs[i]);
        } else {
            group_b.push(i);
            mbr_b = mbr_b.union(&mbrs[i]);
        }
    }
    (group_a, group_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random points (splitmix-style) so tests need
    /// no external RNG crate in this dependency-light substrate.
    fn pseudo_points(n: usize, seed: u64) -> Vec<(Point, usize)> {
        let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| (Point::new(next() * 100.0, next() * 60.0), i))
            .collect()
    }

    fn linear_rect(items: &[(Point, usize)], rect: &Mbr) -> Vec<usize> {
        let mut v: Vec<usize> = items
            .iter()
            .filter(|(p, _)| rect.contains_point(p))
            .map(|(_, i)| *i)
            .collect();
        v.sort_unstable();
        v
    }

    fn collect_rect<T: Clone + Copy + Ord>(tree: &RTree<T>, rect: &Mbr) -> Vec<T> {
        let mut v = Vec::new();
        tree.query_rect(rect, |_, t| v.push(*t));
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_tree_behaviour() {
        let tree: RTree<usize> = RTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.bounds(), None);
        assert_eq!(tree.nearest_neighbor(&Point::ORIGIN), None);
        let stats = tree.query_rect(&Mbr::new(Point::ORIGIN, Point::new(1.0, 1.0)), |_, _| {
            panic!("no entries to visit")
        });
        assert_eq!(stats.matches, 0);
        tree.check_invariants();
    }

    #[test]
    fn insert_then_query_small() {
        let mut tree = RTree::new();
        for (i, (x, y)) in [(0.0, 0.0), (1.0, 1.0), (5.0, 5.0), (9.0, 2.0)]
            .iter()
            .enumerate()
        {
            tree.insert(Point::new(*x, *y), i);
        }
        assert_eq!(tree.len(), 4);
        let rect = Mbr::new(Point::new(-0.5, -0.5), Point::new(2.0, 2.0));
        assert_eq!(collect_rect(&tree, &rect), vec![0, 1]);
        tree.check_invariants();
    }

    #[test]
    fn insertion_matches_linear_scan() {
        let items = pseudo_points(500, 7);
        let mut tree = RTree::new();
        for (p, i) in &items {
            tree.insert(*p, *i);
        }
        tree.check_invariants();
        for rect in [
            Mbr::new(Point::new(10.0, 10.0), Point::new(30.0, 30.0)),
            Mbr::new(Point::new(0.0, 0.0), Point::new(100.0, 60.0)),
            Mbr::new(Point::new(99.0, 59.0), Point::new(99.9, 59.9)),
        ] {
            assert_eq!(collect_rect(&tree, &rect), linear_rect(&items, &rect));
        }
    }

    #[test]
    fn bulk_load_matches_linear_scan() {
        let items = pseudo_points(1000, 42);
        let tree = RTree::bulk_load(items.clone());
        assert_eq!(tree.len(), 1000);
        tree.check_invariants();
        for rect in [
            Mbr::new(Point::new(20.0, 5.0), Point::new(45.0, 25.0)),
            Mbr::new(Point::new(-10.0, -10.0), Point::new(0.0, 0.0)),
        ] {
            assert_eq!(collect_rect(&tree, &rect), linear_rect(&items, &rect));
        }
    }

    #[test]
    fn bulk_load_single_item_and_exact_capacity() {
        let tree = RTree::bulk_load(vec![(Point::new(1.0, 2.0), 9usize)]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
        tree.check_invariants();

        let items = pseudo_points(DEFAULT_MAX_ENTRIES, 3);
        let tree = RTree::bulk_load(items);
        assert_eq!(tree.height(), 1, "exactly one full leaf");
        tree.check_invariants();
    }

    #[test]
    fn circle_query_matches_linear_scan() {
        let items = pseudo_points(800, 11);
        let tree = RTree::bulk_load(items.clone());
        let center = Point::new(50.0, 30.0);
        for radius in [0.0, 1.0, 7.5, 40.0] {
            let mut got = Vec::new();
            tree.query_circle(&center, radius, |_, i| got.push(*i));
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(p, _)| p.euclidean(&center) <= radius)
                .map(|(_, i)| *i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "radius {radius}");
        }
    }

    #[test]
    fn nearest_neighbor_matches_linear_scan() {
        let items = pseudo_points(600, 5);
        let tree = RTree::bulk_load(items.clone());
        for q in [
            Point::new(0.0, 0.0),
            Point::new(50.0, 30.0),
            Point::new(120.0, -5.0),
        ] {
            let (_, &got, d) = tree.nearest_neighbor(&q).unwrap();
            let (want_i, want_d) = items
                .iter()
                .map(|(p, i)| (*i, p.euclidean(&q)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert_eq!(got, want_i, "query {q}");
            assert!((d - want_d).abs() < 1e-12);
        }
    }

    #[test]
    fn knn_is_sorted_and_complete() {
        let items = pseudo_points(300, 13);
        let tree = RTree::bulk_load(items.clone());
        let q = Point::new(42.0, 17.0);
        let got = tree.k_nearest_neighbors(&q, 10);
        assert_eq!(got.len(), 10);
        for w in got.windows(2) {
            assert!(w[0].2 <= w[1].2, "distances ascending");
        }
        // Compare the distance multiset with a linear scan.
        let mut all: Vec<f64> = items.iter().map(|(p, _)| p.euclidean(&q)).collect();
        all.sort_by(f64::total_cmp);
        for (i, (_, _, d)) in got.iter().enumerate() {
            assert!((d - all[i]).abs() < 1e-12, "k={i}");
        }
        // k larger than the tree truncates gracefully.
        assert_eq!(tree.k_nearest_neighbors(&q, 1000).len(), 300);
        assert!(tree.k_nearest_neighbors(&q, 0).is_empty());
    }

    #[test]
    fn region_query_with_custom_predicates() {
        // Emulate the influence-arcs query: points within `mu` of all four
        // corners of an object MBR.
        let items = pseudo_points(500, 21);
        let tree = RTree::bulk_load(items.clone());
        let obj = Mbr::new(Point::new(40.0, 20.0), Point::new(44.0, 24.0));
        let mu = 9.0;
        let mut got = Vec::new();
        tree.query_region(
            |node| node.min_dist_sq(&obj.center()) <= (mu + obj.margin()) * (mu + obj.margin()),
            |p| obj.max_dist_sq(p) <= mu * mu,
            &mut |_, i| got.push(*i),
        );
        got.sort_unstable();
        let mut want: Vec<usize> = items
            .iter()
            .filter(|(p, _)| obj.max_dist_sq(p) <= mu * mu)
            .map(|(_, i)| *i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn query_stats_reflect_pruning() {
        let items = pseudo_points(2000, 99);
        let tree = RTree::bulk_load(items);
        // A tiny query rectangle should touch far fewer entries than the
        // whole tree.
        let stats = tree.query_rect(
            &Mbr::new(Point::new(10.0, 10.0), Point::new(12.0, 12.0)),
            |_, _| {},
        );
        assert!(stats.entries_tested < 400, "pruning ineffective: {stats:?}");
        assert!(stats.nodes_visited >= 1);
    }

    #[test]
    fn duplicate_points_are_kept() {
        let mut tree = RTree::new();
        let p = Point::new(1.0, 1.0);
        for i in 0..20 {
            tree.insert(p, i);
        }
        assert_eq!(tree.len(), 20);
        let mut got = Vec::new();
        tree.query_circle(&p, 0.0, |_, i| got.push(*i));
        assert_eq!(got.len(), 20);
        tree.check_invariants();
    }

    #[test]
    fn heavy_insertion_keeps_invariants() {
        let items = pseudo_points(3000, 1);
        let mut tree = RTree::with_capacity(4);
        for (p, i) in &items {
            tree.insert(*p, *i);
        }
        assert_eq!(tree.check_invariants(), 3000);
        assert!(tree.height() >= 4, "tree should be multiple levels deep");
    }

    #[test]
    fn from_iterator_bulk_loads() {
        let tree: RTree<usize> = pseudo_points(100, 2).into_iter().collect();
        assert_eq!(tree.len(), 100);
        tree.check_invariants();
    }

    #[test]
    fn knn_degenerate_inputs() {
        // k = 0 and the empty tree, in all combinations, plus a query far
        // outside the indexed frame — none may panic.
        let empty: RTree<usize> = RTree::new();
        assert!(empty.k_nearest_neighbors(&Point::ORIGIN, 0).is_empty());
        assert!(empty.k_nearest_neighbors(&Point::ORIGIN, 5).is_empty());
        assert_eq!(empty.nearest_neighbor(&Point::ORIGIN), None);

        let items = pseudo_points(50, 23);
        let tree = RTree::bulk_load(items.clone());
        assert!(tree
            .k_nearest_neighbors(&Point::new(50.0, 30.0), 0)
            .is_empty());
        // Query far outside the frame: all entries still reachable, with
        // distances measured from the outside point.
        let far = Point::new(-1e6, 1e6);
        let got = tree.k_nearest_neighbors(&far, 3);
        assert_eq!(got.len(), 3);
        let mut all: Vec<f64> = items.iter().map(|(p, _)| p.euclidean(&far)).collect();
        all.sort_by(f64::total_cmp);
        assert!((got[0].2 - all[0]).abs() < 1e-6);
    }

    #[test]
    fn circle_query_degenerate_inputs() {
        // Negative radius must match nothing — not the |radius| disc.
        let p = Point::new(1.0, 1.0);
        let tree = RTree::bulk_load(vec![(p, 0usize), (Point::new(1.5, 1.0), 1usize)]);
        let stats = tree.query_circle(&p, -1.0, |_, _| panic!("negative radius matched"));
        assert_eq!(stats.matches, 0);
        assert_eq!(stats.nodes_visited, 0);
        // Empty tree: no matches, no panic.
        let empty: RTree<usize> = RTree::new();
        let stats = empty.query_circle(&p, 10.0, |_, _| panic!("empty tree matched"));
        assert_eq!(stats.matches, 0);
        // Center far outside the indexed frame with a small radius.
        let stats = tree.query_circle(&Point::new(1e9, -1e9), 0.5, |_, _| {
            panic!("far query matched")
        });
        assert_eq!(stats.matches, 0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_point_rejected() {
        let mut tree = RTree::new();
        tree.insert(Point::new(f64::NAN, 0.0), 0usize);
    }

    #[test]
    #[should_panic(expected = "fan-out")]
    fn degenerate_capacity_rejected() {
        let _: RTree<usize> = RTree::with_capacity(1);
    }
}
