//! Dataset statistics (Table 2 and the §4.3 coverage figures).

use crate::dataset::Dataset;
use crate::object::MovingObject;
use std::fmt;

/// Summary statistics of a dataset, mirroring the paper's Table 2 plus
/// the activity-region coverage figures quoted in §4.3.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of users (moving objects) — Table 2 "user count".
    pub users: usize,
    /// Number of venues — Table 2 "venue count".
    pub venues: usize,
    /// Total check-ins — Table 2 "check-ins".
    pub checkins: usize,
    /// Mean check-ins per user — Table 2 "avg. check-ins".
    pub avg_checkins: f64,
    /// Minimum check-ins per user — Table 2 "min check-ins".
    pub min_checkins: usize,
    /// Maximum check-ins per user — Table 2 "max check-ins".
    pub max_checkins: usize,
    /// Frame width (km) — §4.3 "the entire longitude … covers 39.22 km".
    pub frame_width_km: f64,
    /// Frame height (km).
    pub frame_height_km: f64,
    /// Average object-MBR width (km) — §4.3 "on average each object
    /// covers 22.51 km".
    pub avg_object_width_km: f64,
    /// Average object-MBR height (km).
    pub avg_object_height_km: f64,
}

impl DatasetStats {
    /// Computes statistics for a dataset.
    pub fn of(dataset: &Dataset) -> Self {
        let counts: Vec<usize> = dataset
            .objects()
            .iter()
            .map(MovingObject::position_count)
            .collect();
        let checkins: usize = counts.iter().sum();
        let frame = dataset.frame();
        let n = dataset.objects().len() as f64;
        let (mut wsum, mut hsum) = (0.0, 0.0);
        for o in dataset.objects() {
            let m = o.mbr();
            wsum += m.width();
            hsum += m.height();
        }
        DatasetStats {
            name: dataset.name().to_string(),
            users: dataset.objects().len(),
            venues: dataset.venues().len(),
            checkins,
            avg_checkins: checkins as f64 / n,
            min_checkins: counts.iter().copied().min().unwrap_or(0),
            max_checkins: counts.iter().copied().max().unwrap_or(0),
            frame_width_km: frame.width(),
            frame_height_km: frame.height(),
            avg_object_width_km: wsum / n,
            avg_object_height_km: hsum / n,
        }
    }

    /// Fraction of the frame each object covers on average, per axis —
    /// the paper's "~55 % of each dimension" overlap measure.
    pub fn avg_coverage(&self) -> (f64, f64) {
        (
            self.avg_object_width_km / self.frame_width_km,
            self.avg_object_height_km / self.frame_height_km,
        )
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dataset         {}", self.name)?;
        writeln!(f, "user count      {}", self.users)?;
        writeln!(f, "venue count     {}", self.venues)?;
        writeln!(f, "check-ins       {}", self.checkins)?;
        writeln!(f, "avg. check-ins  {:.0}", self.avg_checkins)?;
        writeln!(f, "min check-ins   {}", self.min_checkins)?;
        writeln!(f, "max check-ins   {}", self.max_checkins)?;
        writeln!(
            f,
            "frame           {:.2} x {:.2} km",
            self.frame_width_km, self.frame_height_km
        )?;
        let (cx, cy) = self.avg_coverage();
        write!(
            f,
            "avg object MBR  {:.2} x {:.2} km ({:.0}% x {:.0}% of frame)",
            self.avg_object_width_km,
            self.avg_object_height_km,
            cx * 100.0,
            cy * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, SyntheticGenerator};
    use crate::Venue;
    use pinocchio_geo::Point;

    #[test]
    fn stats_of_toy_dataset() {
        let d = Dataset::new(
            "toy",
            vec![
                MovingObject::new(0, vec![Point::new(0.0, 0.0), Point::new(4.0, 3.0)]),
                MovingObject::new(1, vec![Point::new(2.0, 1.0)]),
            ],
            vec![Venue {
                position: Point::new(0.0, 0.0),
                checkins: 3,
                distinct_visitors: 2,
            }],
        );
        let s = DatasetStats::of(&d);
        assert_eq!(s.users, 2);
        assert_eq!(s.venues, 1);
        assert_eq!(s.checkins, 3);
        assert_eq!(s.min_checkins, 1);
        assert_eq!(s.max_checkins, 2);
        assert!((s.avg_checkins - 1.5).abs() < 1e-12);
        assert_eq!(s.frame_width_km, 4.0);
        assert_eq!(s.frame_height_km, 3.0);
        assert_eq!(s.avg_object_width_km, 2.0);
        assert_eq!(s.avg_object_height_km, 1.5);
    }

    #[test]
    fn generated_stats_match_config() {
        let cfg = GeneratorConfig::small(80, 3);
        let d = SyntheticGenerator::new(cfg.clone()).generate();
        let s = DatasetStats::of(&d);
        assert_eq!(s.users, cfg.n_users);
        assert_eq!(s.venues, cfg.n_venues);
        assert!(s.min_checkins >= cfg.checkins_min);
        assert!(s.max_checkins <= cfg.checkins_max);
        let (cx, cy) = s.avg_coverage();
        assert!(cx > 0.0 && cx <= 1.0);
        assert!(cy > 0.0 && cy <= 1.0);
    }

    #[test]
    fn display_contains_key_fields() {
        let d = SyntheticGenerator::new(GeneratorConfig::small(30, 1)).generate();
        let text = DatasetStats::of(&d).to_string();
        assert!(text.contains("user count"));
        assert!(text.contains("check-ins"));
        assert!(text.contains("frame"));
    }
}
