//! Property suite for the delta-validated update path: a seeded random
//! interleaving of all five [`UpdateOp`]s, checked for exactness after
//! **every** op.
//!
//! Three oracles run in lockstep:
//!
//! * `DynamicPrimeLs::verify_against_static` — the incremental counts,
//!   the cached optimum and the challenger bound against a from-scratch
//!   static solve;
//! * a mirrored world in [`MaintenanceMode::FullScan`] — the pre-delta
//!   reference path, compared op-for-op on `best`, `top_k` and every
//!   per-candidate influence (bit-identical, not approximately);
//! * the wire-id maps — rankings must agree in id space, which catches
//!   slot-reuse bugs that slot-space comparisons would mask.
//!
//! The candidate population is driven across the 64-slot mask-word
//! boundary (past 70 live) mid-sequence and back down, so word-growth
//! and word-straddling bit bookkeeping both get exercised while objects
//! churn.

use pinocchio_geo::Point;
use pinocchio_serve::{MaintenanceMode, UpdateOp, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TAU: f64 = 0.7;
/// Live-candidate target crossing the first 64-bit mask word.
const CANDIDATE_HIGH_WATER: usize = 70;
const OPS: usize = 420;

fn random_point(rng: &mut StdRng) -> Point {
    Point::new(rng.gen_range(0.0..30.0), rng.gen_range(0.0..20.0))
}

fn random_positions(rng: &mut StdRng) -> Vec<Point> {
    let n = rng.gen_range(1..8);
    (0..n).map(|_| random_point(rng)).collect()
}

/// Picks the next op. Phases: grow candidates past the word boundary
/// (first third), churn everything (middle), shrink candidates back
/// under the boundary (last third).
fn next_op(
    rng: &mut StdRng,
    step: usize,
    live_objects: &[u64],
    live_candidates: &[u64],
    next_object: &mut u64,
    next_candidate: &mut u64,
) -> UpdateOp {
    let growing = step < OPS / 3 && live_candidates.len() < CANDIDATE_HIGH_WATER;
    let shrinking = step >= 2 * OPS / 3 && live_candidates.len() > 12;
    let roll = rng.gen_range(0..100);
    if growing && roll < 45 || !shrinking && live_candidates.is_empty() {
        let candidate = *next_candidate;
        *next_candidate += 1;
        return UpdateOp::InsertCandidate {
            candidate,
            location: random_point(rng),
        };
    }
    if shrinking && roll < 40 {
        let candidate = live_candidates[rng.gen_range(0..live_candidates.len())];
        return UpdateOp::RemoveCandidate { candidate };
    }
    match roll {
        0..=39 if !live_objects.is_empty() => UpdateOp::AppendPosition {
            object: live_objects[rng.gen_range(0..live_objects.len())],
            position: random_point(rng),
        },
        40..=64 => {
            let object = *next_object;
            *next_object += 1;
            UpdateOp::InsertObject {
                object,
                positions: random_positions(rng),
            }
        }
        65..=74 if !live_objects.is_empty() => UpdateOp::RemoveObject {
            object: live_objects[rng.gen_range(0..live_objects.len())],
        },
        75..=89 => {
            let candidate = *next_candidate;
            *next_candidate += 1;
            UpdateOp::InsertCandidate {
                candidate,
                location: random_point(rng),
            }
        }
        _ if !live_candidates.is_empty() => UpdateOp::RemoveCandidate {
            candidate: live_candidates[rng.gen_range(0..live_candidates.len())],
        },
        _ => {
            let object = *next_object;
            *next_object += 1;
            UpdateOp::InsertObject {
                object,
                positions: random_positions(rng),
            }
        }
    }
}

/// Both maintenance paths must answer identically after this op.
fn assert_worlds_agree(delta: &World, full: &World, step: usize) {
    assert_eq!(
        delta.best().unwrap(),
        full.best().unwrap(),
        "best, op {step}"
    );
    assert_eq!(
        delta.top_k(5).unwrap(),
        full.top_k(5).unwrap(),
        "top_k(5), op {step}"
    );
    let ids = delta.candidate_ids();
    assert_eq!(ids, full.candidate_ids(), "live ids, op {step}");
    for id in ids {
        assert_eq!(
            delta.influence_of(id).unwrap(),
            full.influence_of(id).unwrap(),
            "influence of candidate {id}, op {step}"
        );
    }
}

#[test]
fn interleaved_updates_stay_exact_across_word_boundary() {
    let mut rng = StdRng::seed_from_u64(0x50_6f_73);
    let mut delta = World::new(TAU);
    assert_eq!(delta.maintenance_mode(), MaintenanceMode::Delta);
    let mut full = World::new(TAU);
    full.set_maintenance_mode(MaintenanceMode::FullScan);

    let mut next_object = 0u64;
    let mut next_candidate = 0u64;
    let mut crossed_boundary = false;
    for step in 0..OPS {
        let live_objects = delta.object_ids();
        let live_candidates = delta.candidate_ids();
        let op = next_op(
            &mut rng,
            step,
            &live_objects,
            &live_candidates,
            &mut next_object,
            &mut next_candidate,
        );
        delta.apply(&op).unwrap();
        full.apply(&op).unwrap();
        crossed_boundary |= delta.candidate_count() >= CANDIDATE_HIGH_WATER;

        // Exactness after EVERY op: incremental state vs from-scratch
        // static solve, and delta path vs full-scan path.
        delta.verify_against_static();
        full.verify_against_static();
        assert_worlds_agree(&delta, &full, step);
    }
    assert!(
        crossed_boundary,
        "schedule never crossed the {CANDIDATE_HIGH_WATER}-candidate mask-word boundary"
    );
    assert!(
        delta.candidate_count() <= 64,
        "schedule never shrank back under the word boundary (got {})",
        delta.candidate_count()
    );
    assert!(delta.object_count() > 0, "schedule degenerated: no objects");
}

#[test]
fn mode_switches_mid_stream_preserve_exactness() {
    // A single world that flips maintenance mode every 60 ops must stay
    // exact throughout — the bookkeeping is maintained in both modes.
    let mut rng = StdRng::seed_from_u64(0xB0A7);
    let mut world = World::new(TAU);
    let mut next_object = 0u64;
    let mut next_candidate = 0u64;
    for step in 0..240 {
        if step % 60 == 30 {
            let flipped = match world.maintenance_mode() {
                MaintenanceMode::Delta => MaintenanceMode::FullScan,
                MaintenanceMode::FullScan => MaintenanceMode::Delta,
            };
            world.set_maintenance_mode(flipped);
        }
        let live_objects = world.object_ids();
        let live_candidates = world.candidate_ids();
        let op = next_op(
            &mut rng,
            step,
            &live_objects,
            &live_candidates,
            &mut next_object,
            &mut next_candidate,
        );
        world.apply(&op).unwrap();
        world.verify_against_static();
    }
}
