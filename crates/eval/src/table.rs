//! Fixed-width text tables and CSV emission.
//!
//! The experiment binaries print paper-style tables to stdout and write
//! the same rows as CSV next to the JSON result files, so EXPERIMENTS.md
//! can quote either form.

use std::fmt;

/// A simple rectangular table: header plus rows of strings.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Convenience: appends a row of displayable cells.
    pub fn push_display_row<D: fmt::Display>(&mut self, row: &[D]) {
        self.push_row(row.iter().map(|d| d.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header first; fields containing commas
    /// or quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths: max of header and cells.
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        if !self.title.is_empty() {
            writeln!(f, "{}", self.title)?;
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (cell, w) in cells.iter().zip(&widths) {
                if !first {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
                first = false;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_display_row(&[&"beta" as &dyn fmt::Display, &2.5]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let s = table().to_string();
        assert!(s.contains("Demo"));
        assert!(s.contains("name   value"));
        assert!(s.contains("alpha  1"));
        assert!(s.contains("beta   2.5"));
    }

    #[test]
    fn csv_round_trip_quotes_special_fields() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(table().len(), 2);
        assert!(!table().is_empty());
        assert!(Table::new("t", &["a"]).is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_rejected() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
