//! ablation_earlystop and probability-kernel micro-benches: the exact
//! cumulative product vs the Lemma 4 early-stopping scan, and the
//! `minMaxRadius` memo cache vs recomputation (Algorithm 1's HashMap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pinocchio_geo::{Euclidean, Point};
use pinocchio_prob::{min_max_radius, CumulativeProbability, MinMaxRadiusCache, PowerLawPf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn positions(n: usize, spread: f64, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..spread), rng.gen_range(0.0..spread)))
        .collect()
}

/// ablation_earlystop: Strategy 2 pays off most when the candidate is
/// close (early certain influence); the far case shows its worst-case
/// overhead is nil.
fn bench_early_stop(c: &mut Criterion) {
    let eval = CumulativeProbability::new(PowerLawPf::paper_default(), Euclidean);
    let pos = positions(200, 10.0, 5);
    let mut group = c.benchmark_group("ablation_earlystop");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (label, candidate) in [
        ("near", Point::new(5.0, 5.0)),
        ("far", Point::new(500.0, 500.0)),
    ] {
        group.bench_function(BenchmarkId::new("exhaustive", label), |b| {
            b.iter(|| black_box(eval.influences(&candidate, &pos, 0.7)))
        });
        group.bench_function(BenchmarkId::new("early_stop", label), |b| {
            b.iter(|| black_box(eval.influences_early_stop(&candidate, &pos, 0.7).influenced))
        });
    }
    group.finish();
}

/// Algorithm 1's HashMap `HM`: memoised minMaxRadius vs recomputing the
/// inverse for every object.
fn bench_radius_cache(c: &mut Criterion) {
    let pf = PowerLawPf::paper_default();
    // Realistic position-count stream: many repeats, few distinct.
    let mut rng = StdRng::seed_from_u64(9);
    let counts: Vec<usize> = (0..10_000).map(|_| rng.gen_range(1..300)).collect();
    let mut group = c.benchmark_group("minmaxradius");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("cached", |b| {
        b.iter(|| {
            let mut cache = MinMaxRadiusCache::new(0.7);
            let mut acc = 0.0;
            for &n in &counts {
                acc += cache.get(&pf, n).unwrap_or(0.0);
            }
            black_box(acc)
        })
    });
    group.bench_function("uncached", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &n in &counts {
                acc += min_max_radius(&pf, 0.7, n).unwrap_or(0.0);
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Raw kernel: cumulative probability over growing position counts.
fn bench_cumulative(c: &mut Criterion) {
    let eval = CumulativeProbability::new(PowerLawPf::paper_default(), Euclidean);
    let candidate = Point::new(50.0, 50.0);
    let mut group = c.benchmark_group("cumulative_probability");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [10usize, 100, 1000] {
        let pos = positions(n, 40.0, n as u64);
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| black_box(eval.cumulative(&candidate, &pos)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_early_stop,
    bench_radius_cache,
    bench_cumulative
);
criterion_main!(benches);
