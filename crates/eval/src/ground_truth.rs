//! Ground-truth rankings from venue popularity.
//!
//! The effectiveness experiments treat "the actual check-in logs at
//! candidate locations, which have been assumed unknown in our
//! framework, as the ground-truth" (§6.2). Candidates are sampled from
//! the venue pool, so each candidate's ground truth is its venue's
//! check-in count.

use pinocchio_data::Dataset;

/// Ranks the candidates of a group (given as venue indices into
/// `dataset.venues()`) by descending ground-truth check-in count, ties
/// towards the smaller candidate position.
///
/// The returned ranking contains *candidate positions* `0..group.len()`,
/// directly comparable to solver rankings over the same group.
///
/// # Panics
/// Panics if any venue index is out of bounds.
pub fn relevant_ranking(dataset: &Dataset, venue_indices: &[usize]) -> Vec<usize> {
    let counts: Vec<u64> = venue_indices
        .iter()
        .map(|&v| dataset.venues()[v].checkins)
        .collect();
    let mut ranking: Vec<usize> = (0..venue_indices.len()).collect();
    ranking.sort_by(|&a, &b| counts[b].cmp(&counts[a]).then(a.cmp(&b)));
    ranking
}

/// As [`relevant_ranking`] but ranking by *distinct visitors* instead of
/// raw check-ins — the influence semantics counts objects, so this is
/// the fairer yardstick for ablation studies.
pub fn relevant_ranking_by_visitors(dataset: &Dataset, venue_indices: &[usize]) -> Vec<usize> {
    let counts: Vec<u64> = venue_indices
        .iter()
        .map(|&v| dataset.venues()[v].distinct_visitors)
        .collect();
    let mut ranking: Vec<usize> = (0..venue_indices.len()).collect();
    ranking.sort_by(|&a, &b| counts[b].cmp(&counts[a]).then(a.cmp(&b)));
    ranking
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinocchio_data::{Dataset, MovingObject, Venue};
    use pinocchio_geo::Point;

    fn dataset() -> Dataset {
        let venue = |x: f64, c: u64, v: u64| Venue {
            position: Point::new(x, 0.0),
            checkins: c,
            distinct_visitors: v,
        };
        Dataset::new(
            "toy",
            vec![MovingObject::new(0, vec![Point::ORIGIN])],
            vec![
                venue(0.0, 5, 2),
                venue(1.0, 50, 1),
                venue(2.0, 5, 5),
                venue(3.0, 9, 3),
            ],
        )
    }

    #[test]
    fn ranks_by_checkins_descending() {
        let d = dataset();
        // Group over venues [0, 1, 2, 3] → counts [5, 50, 5, 9].
        let r = relevant_ranking(&d, &[0, 1, 2, 3]);
        assert_eq!(r, vec![1, 3, 0, 2]); // tie 5 = 5 → smaller position first
    }

    #[test]
    fn ranking_is_relative_to_the_group() {
        let d = dataset();
        // Group over venues [3, 1] → counts [9, 50] → positions [1, 0].
        let r = relevant_ranking(&d, &[3, 1]);
        assert_eq!(r, vec![1, 0]);
    }

    #[test]
    fn visitor_ranking_differs_when_popularity_is_concentrated() {
        let d = dataset();
        let by_checkins = relevant_ranking(&d, &[0, 1, 2, 3]);
        let by_visitors = relevant_ranking_by_visitors(&d, &[0, 1, 2, 3]);
        assert_eq!(by_visitors, vec![2, 3, 0, 1]); // visitors [2,1,5,3]
        assert_ne!(by_checkins, by_visitors);
    }
}
