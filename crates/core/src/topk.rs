//! Top-k PRIME-LS — an extension in the spirit of the top-t most
//! influential facility literature the paper builds on (Xia et al.,
//! VLDB 2005; Zhan et al., CIKM 2012): return the `k` candidates with
//! the highest influence, not just the single optimum.
//!
//! The PINOCCHIO-VO machinery generalises directly: Strategy 1's global
//! cut-off becomes the *k-th best* certified influence instead of the
//! best one. Candidates are still popped in descending `maxInf` order;
//! once the heap's top `maxInf` falls strictly below the cut-off, no
//! remaining candidate can enter the top-k (ties cannot be lost either —
//! a skipped candidate's influence is strictly below the cut-off).

use crate::problem::PrimeLs;
use crate::vo::prepare;
use pinocchio_geo::Point;
use pinocchio_prob::ProbabilityFunction;
use std::collections::BinaryHeap;

/// One entry of a top-k result, ranked by `(influence desc, index asc)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKEntry {
    /// Candidate index into the problem's candidate slice.
    pub candidate: usize,
    /// The candidate's location.
    pub location: Point,
    /// Exact influence `inf(c)`.
    pub influence: u32,
}

/// Computes the exact top-`k` candidates by influence using the
/// bound-driven validation of PINOCCHIO-VO.
///
/// Returns fewer than `k` entries only when the problem has fewer than
/// `k` candidates. The ranking convention matches
/// `SolveResult::ranking`: descending influence, ties towards the
/// smaller candidate index.
///
/// ```
/// use pinocchio_core::{solve_top_k, PrimeLs};
/// use pinocchio_data::MovingObject;
/// use pinocchio_geo::Point;
/// use pinocchio_prob::PowerLawPf;
///
/// let problem = PrimeLs::builder()
///     .objects(vec![
///         MovingObject::new(0, vec![Point::new(0.0, 0.0)]),
///         MovingObject::new(1, vec![Point::new(0.2, 0.0)]),
///         MovingObject::new(2, vec![Point::new(30.0, 0.0)]),
///     ])
///     .candidates(vec![Point::new(0.1, 0.0), Point::new(30.1, 0.0), Point::new(99.0, 0.0)])
///     .probability_function(PowerLawPf::paper_default())
///     .tau(0.7)
///     .build()
///     .unwrap();
/// let top2 = solve_top_k(&problem, 2);
/// assert_eq!(top2[0].candidate, 0); // influences both downtown users
/// assert_eq!(top2[0].influence, 2);
/// assert_eq!(top2[1].candidate, 1);
/// assert_eq!(top2[1].influence, 1);
/// ```
///
/// # Panics
/// Panics if `k == 0`.
pub fn solve_top_k<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    k: usize,
) -> Vec<TopKEntry> {
    assert!(k > 0, "top-k needs k >= 1");
    let eval = problem.evaluator();
    let tau = problem.tau();
    let m = problem.candidates().len();

    let mut prep = prepare(problem, true);
    let vs_store = std::mem::take(&mut prep.vs_store);
    let mut min_inf = std::mem::take(&mut prep.min_inf);
    let mut max_inf = std::mem::take(&mut prep.max_inf);

    let mut heap: BinaryHeap<(u32, u32, std::cmp::Reverse<usize>)> = (0..m)
        .map(|j| (max_inf[j], min_inf[j], std::cmp::Reverse(j)))
        .collect();

    // Exact influences of fully validated candidates.
    let mut validated: Vec<(u32, usize)> = Vec::new();
    // Min-heap over the current best-k exact influences; its top is the
    // Strategy-1 cut-off once k candidates are in.
    let mut best_k: BinaryHeap<std::cmp::Reverse<u32>> = BinaryHeap::new();
    let cutoff = |best_k: &BinaryHeap<std::cmp::Reverse<u32>>| -> u32 {
        if best_k.len() < k {
            0
        } else {
            best_k.peek().map_or(0, |r| r.0)
        }
    };

    while let Some((top_max, _, std::cmp::Reverse(j))) = heap.pop() {
        if top_max < cutoff(&best_k) {
            break; // nobody left can reach the current top-k
        }
        let candidate = problem.candidates()[j];
        let mut dead = false;
        for &obj in &vs_store[j] {
            let object = &problem.objects()[obj as usize];
            let outcome = eval.influences_early_stop(&candidate, object.positions(), tau);
            if outcome.influenced {
                min_inf[j] += 1;
            } else {
                max_inf[j] -= 1;
                if max_inf[j] < cutoff(&best_k) {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            continue;
        }
        let exact = min_inf[j];
        debug_assert_eq!(exact, max_inf[j], "bounds meet after validation");
        validated.push((exact, j));
        best_k.push(std::cmp::Reverse(exact));
        if best_k.len() > k {
            best_k.pop();
        }
    }

    validated.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    validated.truncate(k);
    validated
        .into_iter()
        .map(|(influence, candidate)| TopKEntry {
            candidate,
            location: problem.candidates()[candidate],
            influence,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::Algorithm;
    use pinocchio_data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
    use pinocchio_prob::PowerLawPf;

    fn problem(seed: u64) -> PrimeLs<PowerLawPf> {
        let d = SyntheticGenerator::new(GeneratorConfig::small(80, seed)).generate();
        let (_, candidates) = sample_candidate_group(&d, 40, seed);
        PrimeLs::builder()
            .objects(d.objects().to_vec())
            .candidates(candidates)
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .build()
            .unwrap()
    }

    #[test]
    fn top_k_matches_full_ranking() {
        for seed in [1u64, 2, 3] {
            let p = problem(seed);
            let full = p.solve(Algorithm::Pinocchio);
            let ranking = full.ranking().unwrap();
            let influences = full.influences.unwrap();
            for k in [1usize, 3, 10, 40] {
                let top = solve_top_k(&p, k);
                assert_eq!(top.len(), k.min(p.candidates().len()), "seed {seed} k {k}");
                for (entry, &expect) in top.iter().zip(&ranking) {
                    assert_eq!(entry.candidate, expect, "seed {seed} k {k}");
                    assert_eq!(entry.influence, influences[expect]);
                }
            }
        }
    }

    #[test]
    fn top_1_matches_solve() {
        let p = problem(9);
        let top = solve_top_k(&p, 1);
        let best = p.solve(Algorithm::PinocchioVo);
        assert_eq!(top[0].candidate, best.best_candidate);
        assert_eq!(top[0].influence, best.max_influence);
    }

    #[test]
    fn k_larger_than_m_returns_everything_sorted() {
        let p = problem(11);
        let top = solve_top_k(&p, 1000);
        assert_eq!(top.len(), p.candidates().len());
        for w in top.windows(2) {
            assert!(
                w[0].influence > w[1].influence
                    || (w[0].influence == w[1].influence && w[0].candidate < w[1].candidate)
            );
        }
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        let p = problem(13);
        let _ = solve_top_k(&p, 0);
    }
}
