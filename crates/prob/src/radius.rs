//! `minMaxRadius` (Definition 5) and its per-`n` memo cache.
//!
//! `minMaxRadius(τ, n) = PF⁻¹(1 − (1 − τ)^{1/n})` is the pivotal distance
//! of the paper: by Theorem 1, a candidate within `minMaxRadius` of *all*
//! `n` positions of an object certainly influences it; by Theorem 2, a
//! candidate farther than `minMaxRadius` from all positions certainly
//! does not.
//!
//! Because objects share position counts, Algorithm 1 memoises the radius
//! in a HashMap keyed by `n` — reproduced here as [`MinMaxRadiusCache`].

use crate::logdomain::ln_one_minus;
use crate::pf::ProbabilityFunction;
use std::collections::HashMap;

/// The single-position probability bound `1 − (1 − τ)^{1/n}` that each of
/// `n` independent positions must individually attain for the cumulative
/// probability to reach `τ`.
///
/// Evaluated through the shared [`ln_one_minus`]/`exp_m1` helpers so it
/// stays accurate for large `n` (where the naive `1 − (1−τ)^{1/n}`
/// loses all significant digits) — the paper's datasets contain objects
/// with up to 780 positions.
///
/// # Panics
/// Panics unless `τ ∈ (0, 1)` and `n ≥ 1`.
pub fn required_single_position_probability(tau: f64, n: usize) -> f64 {
    assert!(tau > 0.0 && tau < 1.0, "tau must be in (0, 1), got {tau}");
    assert!(n >= 1, "an object must have at least one position");
    // 1 − (1−τ)^{1/n} = −expm1(ln(1−τ) / n)
    -(ln_one_minus(tau) / n as f64).exp_m1()
}

/// `minMaxRadius(τ, n)` for probability function `pf` (Definition 5).
///
/// Returns `None` when even a facility at distance zero cannot attain the
/// required per-position probability — in that case
/// `Pr_c(O) ≤ 1 − (1 − PF(0))^n < τ` for every candidate, so the object
/// can never be influenced and should be skipped outright.
pub fn min_max_radius<P: ProbabilityFunction + ?Sized>(pf: &P, tau: f64, n: usize) -> Option<f64> {
    pf.inverse(required_single_position_probability(tau, n))
}

/// Memo cache for `minMaxRadius`, keyed by position count `n` — the
/// HashMap `HM` of Algorithm 1 (lines 3–7).
///
/// The cache is bound to one `(PF, τ)` configuration; constructing the
/// solver state afresh per parameter setting mirrors the paper's
/// experimental procedure.
#[derive(Debug)]
pub struct MinMaxRadiusCache {
    tau: f64,
    by_n: HashMap<usize, Option<f64>>,
    hits: u64,
    misses: u64,
}

impl MinMaxRadiusCache {
    /// Creates an empty cache for threshold `τ`.
    ///
    /// # Panics
    /// Panics unless `τ ∈ (0, 1)`.
    pub fn new(tau: f64) -> Self {
        assert!(tau > 0.0 && tau < 1.0, "tau must be in (0, 1), got {tau}");
        MinMaxRadiusCache {
            tau,
            by_n: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The threshold the cache was built for.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// `minMaxRadius(τ, n)` under `pf`, memoised per `n`.
    pub fn get<P: ProbabilityFunction + ?Sized>(&mut self, pf: &P, n: usize) -> Option<f64> {
        if let Some(&cached) = self.by_n.get(&n) {
            self.hits += 1;
            return cached;
        }
        self.misses += 1;
        let value = min_max_radius(pf, self.tau, n);
        self.by_n.insert(n, value);
        value
    }

    /// `minMaxRadius(τ, n)` for every position count in `counts`, in
    /// order, memoised through the same per-`n` map as [`Self::get`].
    ///
    /// This is the bulk form Algorithm 1 effectively runs (one lookup
    /// per object, one computation per *distinct* `n`), and it is what
    /// the object-side μ-aggregate index builds its per-entry radii
    /// from: `None` entries are uninfluenceable objects that never enter
    /// the tree.
    pub fn get_many<P: ProbabilityFunction + ?Sized>(
        &mut self,
        pf: &P,
        counts: impl IntoIterator<Item = usize>,
    ) -> Vec<Option<f64>> {
        counts.into_iter().map(|n| self.get(pf, n)).collect()
    }

    /// `(hits, misses)` counters, for the instrumentation experiments.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of distinct position counts seen so far (the paper's `N`).
    pub fn distinct_counts(&self) -> usize {
        self.by_n.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pf::PowerLawPf;

    #[test]
    fn single_position_required_probability_is_tau() {
        for tau in [0.1, 0.5, 0.9] {
            assert!((required_single_position_probability(tau, 1) - tau).abs() < 1e-15);
        }
    }

    #[test]
    fn required_probability_decreases_with_n() {
        let tau = 0.7;
        let mut last = 1.0;
        for n in [1, 2, 5, 10, 50, 200, 780] {
            let q = required_single_position_probability(tau, n);
            assert!(q < last, "n={n}");
            assert!(q > 0.0 && q < 1.0);
            last = q;
        }
    }

    #[test]
    fn accurate_for_large_n() {
        // For large n, q ≈ −ln(1−τ)/n; check against the series expansion.
        let tau = 0.7;
        let n = 1_000_000;
        let q = required_single_position_probability(tau, n);
        let approx = -(1.0f64 - tau).ln() / n as f64;
        assert!((q - approx).abs() / approx < 1e-5, "q={q} approx={approx}");
    }

    #[test]
    fn radius_grows_with_n_and_shrinks_with_tau() {
        // Definition 5 remark: μ ↑ in n (fixed τ), μ ↑ as τ ↓ (fixed n).
        let pf = PowerLawPf::paper_default();
        let mut last = -1.0;
        for n in [1, 2, 4, 8, 16, 64, 256] {
            let mu = min_max_radius(&pf, 0.7, n).unwrap();
            assert!(mu > last, "n={n}");
            last = mu;
        }
        let mut last = f64::INFINITY;
        for tau in [0.1, 0.3, 0.5, 0.7, 0.89] {
            let mu = min_max_radius(&pf, tau, 10).unwrap();
            assert!(mu < last, "tau={tau}");
            last = mu;
        }
    }

    #[test]
    fn theorem1_boundary_is_exact() {
        // At distance exactly μ, a single position attains exactly the
        // required probability, so n positions at radius μ give Pr = τ.
        let pf = PowerLawPf::paper_default();
        for (tau, n) in [(0.5, 3), (0.7, 10), (0.9, 40)] {
            let mu = min_max_radius(&pf, tau, n).unwrap();
            let p = pf.prob(mu);
            let cumulative = 1.0 - (1.0 - p).powi(n as i32);
            assert!((cumulative - tau).abs() < 1e-9, "tau={tau} n={n}");
        }
    }

    #[test]
    fn unattainable_threshold_yields_none() {
        // PF(0) = 0.9; a single position cannot reach q = 0.95.
        let pf = PowerLawPf::paper_default();
        assert_eq!(min_max_radius(&pf, 0.95, 1), None);
        // ... but two positions can (q = 1 − √0.05 ≈ 0.776 < 0.9).
        assert!(min_max_radius(&pf, 0.95, 2).is_some());
    }

    #[test]
    fn cache_memoises_per_n() {
        let pf = PowerLawPf::paper_default();
        let mut cache = MinMaxRadiusCache::new(0.7);
        let a = cache.get(&pf, 10);
        let b = cache.get(&pf, 10);
        let c = cache.get(&pf, 20);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(cache.stats(), (1, 2));
        assert_eq!(cache.distinct_counts(), 2);
        assert_eq!(cache.tau(), 0.7);
    }

    #[test]
    fn cache_agrees_with_direct_computation() {
        let pf = PowerLawPf::paper_default();
        let mut cache = MinMaxRadiusCache::new(0.3);
        for n in 1..100 {
            assert_eq!(cache.get(&pf, n), min_max_radius(&pf, 0.3, n));
        }
    }

    #[test]
    #[should_panic(expected = "tau")]
    fn tau_one_rejected() {
        let _ = required_single_position_probability(1.0, 5);
    }

    #[test]
    #[should_panic(expected = "at least one position")]
    fn zero_positions_rejected() {
        let _ = required_single_position_probability(0.5, 0);
    }
}
