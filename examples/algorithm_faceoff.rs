//! Head-to-head of the four solvers on a mid-sized synthetic city:
//! identical answers, very different work. A miniature of the paper's
//! Fig. 8 scalability experiment.
//!
//! Run with `cargo run --release --example algorithm_faceoff`.

use pinocchio::data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
use pinocchio::eval::Table;
use pinocchio::prelude::*;

fn main() {
    let dataset = SyntheticGenerator::new(GeneratorConfig::small(600, 11)).generate();
    let (_, candidates) = sample_candidate_group(&dataset, 300, 3);

    println!(
        "world: {} objects, {} check-ins, {} candidates, tau = 0.7\n",
        dataset.objects().len(),
        dataset.total_checkins(),
        candidates.len()
    );

    let problem = PrimeLs::builder()
        .objects(dataset.objects().to_vec())
        .candidates(candidates)
        .probability_function(PowerLawPf::paper_default())
        .tau(0.7)
        .build()
        .expect("valid problem");

    let mut table = Table::new(
        "algorithm face-off",
        &[
            "algorithm",
            "best",
            "influence",
            "pairs validated",
            "positions evaluated",
            "pruned pairs",
            "time",
        ],
    );
    let mut answers = Vec::new();
    for algorithm in Algorithm::ALL {
        let r = problem.solve(algorithm);
        table.push_row(vec![
            r.algorithm.label().to_string(),
            format!("#{}", r.best_candidate),
            r.max_influence.to_string(),
            r.stats.validated_pairs.to_string(),
            r.stats.positions_evaluated.to_string(),
            r.stats.pruned_pairs().to_string(),
            format!("{:.2?}", r.elapsed),
        ]);
        answers.push((r.best_candidate, r.max_influence));
    }
    println!("{table}");

    assert!(
        answers.windows(2).all(|w| w[0] == w[1]),
        "all algorithms must return the same optimum"
    );
    println!("all four algorithms agree on the optimum ✓");
}
