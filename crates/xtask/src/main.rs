//! `cargo run -p xtask -- <subcommand>` — the workspace's task runner.
//!
//! Subcommands:
//!
//! * `lint` — run every static-analysis rule; exit 1 on any deny.
//! * `audit-stats` — run only the `stats-accounting` rule and print the
//!   solver-file coverage table.
//! * `check-headers` — run only the `crate-hygiene` rule.
//!
//! Common flags: `--format json|text` (default `text`),
//! `--root <path>` (default: the workspace root containing this crate).
//! `lint` additionally accepts `--list-rules` (print the rule registry
//! and exit) and `--changed[=BASE]` (report only findings in files
//! changed versus BASE, default `HEAD`; the whole workspace is still
//! parsed so cross-file rules keep their graphs).

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::{changed_files, lint, LintConfig, LintReport, RULES};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p xtask -- <lint|audit-stats|check-headers> \
         [--format json|text] [--root PATH] [--list-rules] [--changed[=BASE]]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };

    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut list_rules = false;
    let mut changed_base: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                format = v.clone();
                i += 2;
            }
            "--root" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                root = Some(PathBuf::from(v));
                i += 2;
            }
            "--list-rules" => {
                list_rules = true;
                i += 1;
            }
            "--changed" => {
                changed_base = Some("HEAD".to_string());
                i += 1;
            }
            other if other.starts_with("--changed=") => {
                let base = &other["--changed=".len()..];
                if base.is_empty() {
                    return usage();
                }
                changed_base = Some(base.to_string());
                i += 1;
            }
            _ => return usage(),
        }
    }
    if format != "text" && format != "json" {
        return usage();
    }
    if (list_rules || changed_base.is_some()) && command != "lint" {
        return usage();
    }
    if list_rules {
        print_rule_table();
        return ExitCode::SUCCESS;
    }
    let root = root.unwrap_or_else(workspace_root);

    let mut config = match command.as_str() {
        "lint" => LintConfig::all(&root),
        "audit-stats" => LintConfig::only(&root, "stats-accounting"),
        "check-headers" => LintConfig::only(&root, "crate-hygiene"),
        _ => return usage(),
    };
    if let Some(base) = &changed_base {
        match changed_files(&root, base) {
            Some(scope) => {
                eprintln!(
                    "xtask lint: scoped to {} file(s) changed vs {base}",
                    scope.len()
                );
                config.scope = Some(scope);
            }
            None => {
                // No git / unknown base: a silent pass would be worse
                // than a full lint.
                eprintln!("xtask lint: cannot resolve changes vs {base}; linting everything");
            }
        }
    }
    let report = lint(&config);

    if format == "json" {
        match serde_json::to_string_pretty(&report.to_json()) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("failed to serialise report: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        print!("{}", report.render_text());
        if command == "audit-stats" {
            print_stats_table(&root);
        }
    }

    if report.has_denials() {
        ExitCode::FAILURE
    } else {
        report_clean(command, &report);
        ExitCode::SUCCESS
    }
}

fn report_clean(command: &str, report: &LintReport) {
    if report.diagnostics.is_empty() {
        eprintln!("xtask {command}: clean ({} files)", report.files_scanned);
    }
}

/// `lint --list-rules`: the registry as a fixed-width table.
fn print_rule_table() {
    println!("{:<20} {:<6} description", "rule", "level");
    for rule in RULES {
        println!(
            "{:<20} {:<6} {}{}",
            rule.id,
            rule.default_severity.label(),
            rule.summary,
            if rule.meta { " [meta: always on]" } else { "" }
        );
    }
}

/// The workspace root: two levels above this crate's manifest dir.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Text-mode extra for `audit-stats`: which core files define solver
/// entry points and whether they reference `SolveStats`.
fn print_stats_table(root: &std::path::Path) {
    println!("solver entry points (crates/core):");
    for rel in xtask::collect_files(root) {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if !rel_str.starts_with("crates/core/src/") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let file = xtask::SourceFile::parse(&rel_str, &text);
        let has_entry = file
            .lines
            .iter()
            .any(|l| !l.in_test && l.code.starts_with("pub fn solve"));
        if has_entry {
            let ok = file.code_contains("SolveStats");
            println!(
                "  {:<36} {}",
                rel_str,
                if ok {
                    "SolveStats ok"
                } else {
                    "MISSING SolveStats"
                }
            );
        }
    }
}
