//! Structurally shared, append-friendly position storage.
//!
//! The dynamic maintenance path ([`DynamicPrimeLs`] in
//! `pinocchio-core`) and the serving layer's epoch-snapshot writer both
//! need two things the flat `Vec<Point>` of [`MovingObject`] cannot
//! give them at the same time:
//!
//! * **O(1) amortised append** — a position stream appends one
//!   observation at a time; rebuilding the whole vector per append is
//!   O(n) each, O(n²) over the stream;
//! * **O(n / chunk) clone** — the serve writer clones the entire world
//!   once per published epoch, and deep-copying every trajectory makes
//!   the epoch-publish cost proportional to the total position count.
//!
//! [`PositionLog`] stores positions in fixed-capacity chunks behind
//! [`Arc`]s. Cloning a log clones only the `Arc` spine (one pointer per
//! chunk); appending uses [`Arc::make_mut`] on the last chunk, which
//! mutates in place when the chunk is unshared and copies **at most one
//! chunk** when an older snapshot still holds it (copy-on-write). The
//! bounding box is maintained incrementally, so `mbr()` is O(1) rather
//! than a scan.
//!
//! Iteration order is arrival order, exactly as the flat `A_1D` layout:
//! [`PositionLog::chunks`] yields the positions as consecutive slices,
//! so an evaluation that folds over the chunks in order performs the
//! **bit-identical** float sequence as one over a contiguous slice —
//! the property the dynamic state's exactness gates rely on.
//!
//! [`DynamicPrimeLs`]: ../pinocchio_core/dynamic/struct.DynamicPrimeLs.html

use crate::object::MovingObject;
use pinocchio_geo::{Mbr, Point};
use std::sync::Arc;

/// Number of positions per chunk. Chosen so the per-clone cost is
/// `len / 64` pointer copies while a copy-on-write append touches at
/// most 64 positions — both far below the O(n) they replace.
pub const POSITION_CHUNK: usize = 64;

/// An append-only position sequence stored in structurally shared
/// chunks (see the module docs for the cost model).
///
/// Invariants: never empty; every chunk except the last is exactly
/// [`POSITION_CHUNK`] long; all positions are finite; `mbr` is the
/// tight bounding box of all positions.
#[derive(Debug, Clone)]
pub struct PositionLog {
    chunks: Vec<Arc<Vec<Point>>>,
    len: usize,
    mbr: Mbr,
}

impl PositionLog {
    /// Builds a log from an initial position sequence, in order.
    ///
    /// # Panics
    /// Panics when `positions` is empty or contains a non-finite
    /// coordinate — the same contract as [`MovingObject::new`].
    pub fn from_positions(positions: &[Point]) -> PositionLog {
        assert!(
            !positions.is_empty(),
            "a position log needs at least one position"
        );
        assert!(
            positions.iter().all(Point::is_finite),
            "position log has a non-finite position"
        );
        let chunks = positions
            .chunks(POSITION_CHUNK)
            .map(|c| Arc::new(c.to_vec()))
            .collect();
        let mbr = Mbr::from_points(positions).unwrap_or(Mbr::from_point(positions[0]));
        PositionLog {
            chunks,
            len: positions.len(),
            mbr,
        }
    }

    /// Builds a log holding a [`MovingObject`]'s positions.
    pub fn from_object(object: &MovingObject) -> PositionLog {
        PositionLog::from_positions(object.positions())
    }

    /// Appends one position in O(1) amortised time. When an older clone
    /// still shares the last chunk, at most that one chunk is copied
    /// (copy-on-write); the shared full chunks are never touched.
    ///
    /// # Panics
    /// Panics on a non-finite position.
    pub fn push(&mut self, position: Point) {
        assert!(position.is_finite(), "non-finite position");
        match self.chunks.last_mut() {
            Some(last) if last.len() < POSITION_CHUNK => {
                Arc::make_mut(last).push(position);
            }
            _ => {
                let mut chunk = Vec::with_capacity(POSITION_CHUNK);
                chunk.push(position);
                self.chunks.push(Arc::new(chunk));
            }
        }
        self.len += 1;
        self.mbr.expand_to(&position);
    }

    /// Number of stored positions (always ≥ 1).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false` — kept for API symmetry with the usual
    /// `len`/`is_empty` pairing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tight bounding box of all positions, maintained incrementally
    /// (O(1), no scan).
    #[inline]
    pub fn mbr(&self) -> Mbr {
        self.mbr
    }

    /// The positions as consecutive chunk slices, in arrival order.
    /// Concatenating the slices reproduces the flat `A_1D` layout
    /// exactly.
    pub fn chunks(&self) -> impl Iterator<Item = &[Point]> {
        self.chunks.iter().map(|c| c.as_slice())
    }

    /// Iterates over all positions in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &Point> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Materialises the positions into a contiguous vector (O(n); used
    /// only by from-scratch solve paths, never by the update path).
    pub fn to_positions(&self) -> Vec<Point> {
        let mut out = Vec::with_capacity(self.len);
        for chunk in &self.chunks {
            out.extend_from_slice(chunk);
        }
        out
    }

    /// Materialises a [`MovingObject`] with the given id (O(n); the
    /// from-scratch freeze path).
    pub fn to_object(&self, id: u64) -> MovingObject {
        MovingObject::new(id, self.to_positions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(i as f64, (i % 7) as f64))
            .collect()
    }

    #[test]
    fn round_trips_and_chunk_shape() {
        for n in [
            1,
            2,
            POSITION_CHUNK - 1,
            POSITION_CHUNK,
            POSITION_CHUNK + 1,
            300,
        ] {
            let positions = pts(n);
            let log = PositionLog::from_positions(&positions);
            assert_eq!(log.len(), n);
            assert!(!log.is_empty());
            assert_eq!(log.to_positions(), positions);
            assert_eq!(log.iter().copied().collect::<Vec<_>>(), positions);
            // All chunks full except possibly the last.
            let chunks: Vec<&[Point]> = log.chunks().collect();
            for c in &chunks[..chunks.len() - 1] {
                assert_eq!(c.len(), POSITION_CHUNK);
            }
            assert_eq!(log.mbr(), Mbr::from_points(&positions).unwrap());
        }
    }

    #[test]
    fn push_crosses_chunk_boundaries() {
        let mut log = PositionLog::from_positions(&pts(1));
        let mut expect = pts(1);
        for i in 1..(3 * POSITION_CHUNK + 5) {
            let p = Point::new(i as f64 * 0.5, -(i as f64));
            log.push(p);
            expect.push(p);
        }
        assert_eq!(log.to_positions(), expect);
        assert_eq!(log.mbr(), Mbr::from_points(&expect).unwrap());
    }

    #[test]
    fn clone_shares_chunks_structurally() {
        let mut log = PositionLog::from_positions(&pts(2 * POSITION_CHUNK + 3));
        let snapshot = log.clone();
        // Full chunks are shared, not copied.
        let a: Vec<&[Point]> = log.chunks().collect();
        let b: Vec<&[Point]> = snapshot.chunks().collect();
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&log.chunks[0], &snapshot.chunks[0]));
        assert!(Arc::ptr_eq(&log.chunks[2], &snapshot.chunks[2]));

        // Appending to the live log copies at most the last (shared)
        // chunk; the snapshot is untouched.
        log.push(Point::new(1000.0, 1000.0));
        assert_eq!(snapshot.len(), 2 * POSITION_CHUNK + 3);
        assert_eq!(log.len(), 2 * POSITION_CHUNK + 4);
        assert!(Arc::ptr_eq(&log.chunks[0], &snapshot.chunks[0]));
        assert!(!Arc::ptr_eq(&log.chunks[2], &snapshot.chunks[2]));
        assert!(snapshot.iter().all(|p| *p != Point::new(1000.0, 1000.0)));

        // Unshared appends mutate in place (no chunk churn).
        let spine_before = log.chunks[2].as_ptr();
        log.push(Point::new(5.0, 5.0));
        assert_eq!(log.chunks[2].as_ptr(), spine_before);
    }

    #[test]
    fn object_round_trip() {
        let object = MovingObject::new(42, pts(10));
        let log = PositionLog::from_object(&object);
        assert_eq!(log.to_object(42), object);
    }

    #[test]
    #[should_panic(expected = "at least one position")]
    fn empty_log_rejected() {
        let _ = PositionLog::from_positions(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_push_rejected() {
        let mut log = PositionLog::from_positions(&pts(1));
        log.push(Point::new(f64::NAN, 0.0));
    }
}
