//! Sampling-based approximate PRIME-LS.
//!
//! The approximate-location-selection literature the paper builds on
//! (Yan et al., CIKM 2011; Tao et al., VLDB 2013) trades exactness for
//! speed with user-chosen error bounds. The natural analogue for
//! PRIME-LS is *object sampling*: the influence fraction
//! `f(c) = inf(c) / r` is a mean of i.i.d. Bernoulli variables over a
//! uniform object sample, so Hoeffding's inequality with a union bound
//! over the `m` candidates gives, for sample size
//!
//! ```text
//! s = ⌈ ln(2m / δ) / (2ε²) ⌉ ,
//! ```
//!
//! `Pr[ ∀c: |f̂(c) − f(c)| ≤ ε ] ≥ 1 − δ`. The candidate maximising the
//! sampled influence is therefore within `2ε·r` of the true optimum's
//! influence with probability at least `1 − δ` — independent of the
//! number of objects `r`, which is what makes the approach attractive
//! for the dynamic, ever-growing datasets the paper's future work
//! targets.
//!
//! The sampled sub-problem is solved with the full PINOCCHIO pruning
//! machinery, so the speedup multiplies with — rather than replaces —
//! the paper's optimizations.

use crate::pinocchio;
use crate::problem::PrimeLs;
use crate::result::{Algorithm, SolveStats};
use pinocchio_geo::Point;
use pinocchio_prob::ProbabilityFunction;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Accuracy parameters for [`solve_approx`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxConfig {
    /// Additive error on the influence *fraction* (`ε ∈ (0, 1)`); the
    /// returned candidate's true influence is within `2ε·r` of the
    /// optimum with probability `1 − δ`.
    pub epsilon: f64,
    /// Failure probability (`δ ∈ (0, 1)`).
    pub delta: f64,
    /// RNG seed for the object sample.
    pub seed: u64,
}

impl ApproxConfig {
    /// A sensible default: `ε = 0.02`, `δ = 0.01`.
    pub fn new(epsilon: f64, delta: f64, seed: u64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0, 1), got {delta}"
        );
        ApproxConfig {
            epsilon,
            delta,
            seed,
        }
    }

    /// The Hoeffding sample size for `m` candidates.
    pub fn sample_size(&self, m: usize) -> usize {
        assert!(m > 0);
        #[allow(clippy::cast_possible_truncation)]
        // `.max(1.0)` keeps it in [1, 2^52): ε, δ are sanity-checked at construction
        {
            ((2.0 * m as f64 / self.delta).ln() / (2.0 * self.epsilon * self.epsilon))
                .ceil()
                .max(1.0) as usize
        }
    }
}

/// Result of an approximate solve.
#[derive(Debug, Clone)]
pub struct ApproxResult {
    /// Index of the selected candidate.
    pub best_candidate: usize,
    /// The selected candidate's location.
    pub best_location: Point,
    /// Estimated influence fraction `f̂(best) ∈ [0, 1]`.
    pub estimated_fraction: f64,
    /// Estimated influence count `f̂(best) · r` (rounded).
    pub estimated_influence: u32,
    /// Objects actually sampled (capped at `r`, where the solve is
    /// exact).
    pub sample_size: usize,
    /// Whether the sample covered every object (result then exact).
    pub exact: bool,
    /// Cost counters of the underlying (sampled or exact) PINOCCHIO
    /// solve; on a sampled run the pair space is `s · m`, not `r · m`.
    pub stats: SolveStats,
}

/// Approximately solves PRIME-LS by uniform object sampling (with
/// replacement) and an exact PINOCCHIO solve on the sample.
pub fn solve_approx<P: ProbabilityFunction + Clone>(
    problem: &PrimeLs<P>,
    config: ApproxConfig,
) -> ApproxResult {
    let r = problem.objects().len();
    let m = problem.candidates().len();
    let s = config.sample_size(m);

    if s >= r {
        // Sampling would cost at least as much as the exact solve.
        let exact = pinocchio::solve(problem);
        return ApproxResult {
            best_candidate: exact.best_candidate,
            best_location: exact.best_location,
            estimated_fraction: exact.max_influence as f64 / r as f64,
            estimated_influence: exact.max_influence,
            sample_size: r,
            exact: true,
            stats: exact.stats,
        };
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let sampled: Vec<_> = (0..s)
        .map(|_| problem.objects()[rng.gen_range(0..r)].clone())
        .collect();
    let sub = PrimeLs::builder()
        .objects(sampled)
        .candidates(problem.candidates().to_vec())
        .probability_function(problem.pf().clone())
        .tau(problem.tau())
        .build()
        // pinocchio-lint: allow(panic-path) -- the sub-problem reuses the parent's validated candidates/pf/tau and a non-empty sample, so every BuildError is ruled out
        .expect("sub-problem inherits validity");
    let result = sub.solve(Algorithm::Pinocchio);

    let fraction = result.max_influence as f64 / s as f64;
    #[allow(clippy::cast_possible_truncation)]
    let estimated_influence = (fraction * r as f64).round() as u32; // pinocchio-lint: allow(cast-truncation) -- fraction is in [0, 1] and r is an in-memory object count, so the product fits u32
    ApproxResult {
        best_candidate: result.best_candidate,
        best_location: result.best_location,
        estimated_fraction: fraction,
        estimated_influence,
        sample_size: s,
        exact: false,
        stats: result.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinocchio_data::{sample_candidate_group, GeneratorConfig, SyntheticGenerator};
    use pinocchio_prob::PowerLawPf;

    fn problem(users: usize, seed: u64) -> PrimeLs<PowerLawPf> {
        let d = SyntheticGenerator::new(GeneratorConfig::small(users, seed)).generate();
        let (_, candidates) = sample_candidate_group(&d, 30, seed);
        PrimeLs::builder()
            .objects(d.objects().to_vec())
            .candidates(candidates)
            .probability_function(PowerLawPf::paper_default())
            .tau(0.7)
            .build()
            .unwrap()
    }

    #[test]
    fn sample_size_follows_hoeffding() {
        let cfg = ApproxConfig::new(0.05, 0.01, 1);
        // ln(2·100/0.01) / (2·0.0025) = ln(20000)·200 ≈ 1981.
        let s = cfg.sample_size(100);
        assert!((1900..2100).contains(&s), "s = {s}");
        // Larger ε shrinks the sample quadratically.
        let s2 = ApproxConfig::new(0.1, 0.01, 1).sample_size(100);
        assert!(s2 < s / 3);
        // Smaller δ grows it only logarithmically.
        let s3 = ApproxConfig::new(0.05, 0.001, 1).sample_size(100);
        assert!(s3 > s && s3 < s * 2);
    }

    #[test]
    fn falls_back_to_exact_on_small_inputs() {
        let p = problem(50, 3);
        // ε small enough that s ≥ r.
        let r = solve_approx(&p, ApproxConfig::new(0.01, 0.01, 7));
        assert!(r.exact);
        assert_eq!(r.sample_size, 50);
        let exact = p.solve(Algorithm::PinocchioVo);
        assert_eq!(r.best_candidate, exact.best_candidate);
        assert_eq!(r.estimated_influence, exact.max_influence);
    }

    #[test]
    fn estimate_is_within_the_advertised_bound() {
        let p = problem(600, 5);
        let exact = p.solve(Algorithm::Pinocchio);
        let influences = exact.influences.as_ref().unwrap();
        let r_count = p.objects().len() as f64;
        let epsilon = 0.12; // s ≈ 300 < r = 600: genuinely sampled

        let approx = solve_approx(&p, ApproxConfig::new(epsilon, 0.01, 11));
        assert!(!approx.exact);
        assert!(approx.sample_size < p.objects().len());
        // The selected candidate's *true* influence must be within 2ε·r
        // of the optimum (holds w.p. 0.99; the fixed seed freezes one
        // draw, making the test deterministic).
        let chosen_true = influences[approx.best_candidate] as f64;
        let best_true = exact.max_influence as f64;
        assert!(
            best_true - chosen_true <= 2.0 * epsilon * r_count,
            "true influence {chosen_true} vs optimum {best_true} (bound {})",
            2.0 * epsilon * r_count
        );
        // And the estimated fraction must be ε-close to the chosen
        // candidate's true fraction.
        assert!(
            (approx.estimated_fraction - chosen_true / r_count).abs() <= epsilon,
            "estimate {} vs true {}",
            approx.estimated_fraction,
            chosen_true / r_count
        );
    }

    #[test]
    fn stats_cover_the_sampled_pair_space() {
        let p = problem(300, 9);
        let approx = solve_approx(&p, ApproxConfig::new(0.12, 0.05, 42));
        assert!(!approx.exact);
        let pair_space = (approx.sample_size * p.candidates().len()) as u64;
        let accounted = approx.stats.accounted_pairs();
        assert!(accounted > 0, "stats must be populated");
        assert!(accounted <= pair_space, "{accounted} > {pair_space}");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = problem(300, 9);
        let cfg = ApproxConfig::new(0.1, 0.05, 42);
        let a = solve_approx(&p, cfg);
        let b = solve_approx(&p, cfg);
        assert_eq!(a.best_candidate, b.best_candidate);
        assert_eq!(a.estimated_influence, b.estimated_influence);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_rejected() {
        let _ = ApproxConfig::new(0.0, 0.1, 1);
    }
}
